//! One traced analysis or simulation run, with convergence diagnostics.
//!
//! ```text
//! cpa-trace analyze  [--seed S] [--cores N] [--tasks-per-core K] [--util U]
//!                    [--bus fp|rr|tdma|perfect] [--slots K]
//!                    [--mode aware|oblivious] [SINKS]
//! cpa-trace sim      [--seed S] [--cores N] [--tasks-per-core K] [--util U]
//!                    [--bus fp|rr|tdma] [--slots K] [--horizon H]
//!                    [--reference-sim] [SINKS]
//! cpa-trace sweep    [--seed S] [--cores N] [--tasks-per-core K] [--util U]
//!                    [--bus fp|rr|tdma|perfect] [--slots K] [--sets N]
//!                    [--threads T] [--chunk C] [SINKS]
//! cpa-trace optimize [--seed S] [--cores N] [--tasks-per-core K] [--util U]
//!                    [--bus fp|rr|tdma|perfect] [--slots K]
//!                    [--mode aware|oblivious] [--sets N] [--threads T]
//!                    [--chunk C] [SINKS]
//! cpa-trace bench diff --baseline FILE --current FILE [--current FILE ...]
//!                    [--threshold F] [--min-speedup STAGE=K ...] [--json]
//!
//! SINKS: [--trace FILE] [--profile FILE] [--json]
//!        [--export chrome|openmetrics|json] [--export-out FILE]
//! ```
//!
//! `analyze` generates one task set (paper-default profile with the given
//! overrides), runs the WCRT analysis with the `cpa-obs` subscriber
//! enabled, and prints a per-task convergence report: WCRT, inner
//! iteration counts, and the BAS/BAO/CPRO/CRPD decomposition of the bound
//! at its fixed point, naming the dominant term. `sim` runs the
//! cycle-accurate simulator on the same workload instead and reports the
//! observed per-task statistics, bus occupancy, and an event-skip summary
//! (spans executed, mean span length, fraction of the horizon jumped).
//! `--reference-sim` drives the cycle-stepped reference loop instead of
//! the event-skipping fast path (DESIGN.md §11). `sweep` evaluates one
//! experiment grid point (`--sets` task sets, persistence-aware and
//! -oblivious under the chosen bus) through the shared `cpa-pool` worker
//! pool and reports the pool's dynamic-scheduling statistics — chunks
//! claimed, chunks stolen beyond the fair share, steal ratio — together
//! with the engine's scratch-reuse count (DESIGN.md §12).
//!
//! Every run subcommand ends with a per-stage pipeline breakdown (wall
//! time, calls, work items, and throughput per phase — DESIGN.md §14) and
//! a self-profile: the span tree with wall-time aggregation,
//! pretty-printed (or embedded in the `--json` document).
//! `--trace FILE` writes the deterministic JSON-lines event stream
//! (payloads carry iterations and seeds, never wall-clock values);
//! `--profile FILE` writes the metrics + profile JSON document.
//!
//! `--export chrome|openmetrics|json` renders the run through
//! `cpa-telemetry`: a Chrome Trace Event / Perfetto JSON document, an
//! OpenMetrics text exposition, or the stage-breakdown JSON. Chrome and
//! OpenMetrics exports are byte-deterministic (same seed ⇒ identical
//! bytes at any `--threads`/`--chunk`). With `--export-out FILE` the
//! export is written beside the normal report; without it the export
//! document replaces the report on stdout (`cpa-trace sweep --export
//! chrome > sweep.json`, then open in Perfetto).
//!
//! `cpa-trace bench diff --baseline FILE --current FILE...` compares
//! unified `BenchRecord` documents (the `BENCH_*.json` files or
//! `results/bench_history.jsonl`) and exits non-zero when any throughput
//! entry regressed by more than `--threshold` (default 15%). Repeatable
//! `--min-speedup STAGE=K` flags additionally assert absolute floors: the
//! named throughput entry or gate in the current records must report a
//! value of at least `K` (CI uses this to pin the `sweep_e2e`
//! `fig2_fp_panel_speedup` gate declaratively).

use std::path::PathBuf;
use std::process::ExitCode;

use cpa_analysis::{
    analyze, decompose, AnalysisConfig, AnalysisContext, BusPolicy, DominantTerm, PersistenceMode,
};
use cpa_experiments::cli::Args;
use cpa_experiments::runner::evaluate_point;
use cpa_experiments::SweepOptions;
use cpa_model::{Platform, TaskSet, Time};
use cpa_sim::{SimConfig, SimReport, Simulator};
use cpa_telemetry::{
    chrome_trace, diff_records, load_records, openmetrics, parse_min_speedup, ExportScope,
    StageReport, DEFAULT_REGRESSION_THRESHOLD,
};
use cpa_validate::oracle::{arbitration_of, horizon_for};
use cpa_validate::platform_for_tasks;
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// One row of the `analyze --json` convergence report.
#[derive(Serialize)]
struct AnalyzeTaskRow {
    task: String,
    core: usize,
    priority: u32,
    wcrt: Option<u64>,
    deadline: u64,
    converged: bool,
    inner_iterations: u64,
    dominant: &'static str,
    bas: u64,
    bao: u64,
    cpro: u64,
    crpd: u64,
    blocking: u64,
}

/// Engine-internals section of the `analyze` report: demand-curve cache
/// effectiveness and outer-worklist statistics, from the `engine.*`
/// counter deltas of this run.
#[derive(Serialize)]
struct EngineStats {
    curve_hits: u64,
    curve_misses: u64,
    curve_hit_rate: f64,
    same_core_hits: u64,
    same_core_misses: u64,
    bao_hits: u64,
    bao_misses: u64,
    tasks_solved: u64,
    tasks_skipped: u64,
    worklist_rounds: u32,
    mean_worklist_depth: f64,
    scratch_reuses: u64,
}

impl EngineStats {
    /// Snapshot of the always-on engine counters, for delta-ing around one
    /// `analyze` call.
    fn snapshot() -> [u64; 9] {
        [
            cpa_obs::counter("engine.curve_hit").get(),
            cpa_obs::counter("engine.curve_miss").get(),
            cpa_obs::counter("engine.tasks_solved").get(),
            cpa_obs::counter("engine.tasks_skipped").get(),
            cpa_obs::counter("engine.same_core_hit").get(),
            cpa_obs::counter("engine.same_core_miss").get(),
            cpa_obs::counter("engine.bao_hit").get(),
            cpa_obs::counter("engine.bao_miss").get(),
            cpa_obs::counter("engine.scratch_reuses").get(),
        ]
    }

    fn from_delta(before: [u64; 9], rounds: u32) -> EngineStats {
        let after = EngineStats::snapshot();
        let d = |i: usize| after[i].saturating_sub(before[i]);
        let (hits, misses, solved, skipped) = (d(0), d(1), d(2), d(3));
        let probes = hits + misses;
        EngineStats {
            curve_hits: hits,
            curve_misses: misses,
            curve_hit_rate: if probes == 0 {
                0.0
            } else {
                hits as f64 / probes as f64
            },
            same_core_hits: d(4),
            same_core_misses: d(5),
            bao_hits: d(6),
            bao_misses: d(7),
            tasks_solved: solved,
            tasks_skipped: skipped,
            worklist_rounds: rounds,
            mean_worklist_depth: if rounds == 0 {
                0.0
            } else {
                solved as f64 / f64::from(rounds)
            },
            scratch_reuses: d(8),
        }
    }
}

/// Warm-start section of the `analyze`/`sweep`/`optimize` reports: how
/// much work the engine's cross-solve retention avoided (DESIGN.md §15),
/// from the always-on `engine.warm_*`/`engine.seed_*` counter deltas.
/// Retention never changes results — these counters are the only
/// observable difference between a warm and a cold solve.
#[derive(Serialize)]
struct WarmStats {
    /// Engine resets that carried at least one certified cache entry over
    /// from the previous solve.
    warm_starts: u64,
    /// Same-core curves and BAO slots carried across solve boundaries.
    segments_reused: u64,
    /// Inner-loop term re-derivations skipped thanks to carried entries.
    inner_iters_saved: u64,
    /// Response-time seed components adopted (provably equal to the
    /// iteration's own starting point).
    seed_hints_adopted: u64,
    /// Seed components rejected and re-derived from scratch.
    seed_hints_rejected: u64,
}

impl WarmStats {
    /// Snapshot of the always-on warm-start counters, for delta-ing
    /// around one analysis, sweep, or optimizer run.
    fn snapshot() -> [u64; 5] {
        [
            cpa_obs::counter("engine.warm_starts").get(),
            cpa_obs::counter("engine.segments_reused").get(),
            cpa_obs::counter("engine.inner_iters_saved").get(),
            cpa_obs::counter("engine.seed_hints_adopted").get(),
            cpa_obs::counter("engine.seed_hints_rejected").get(),
        ]
    }

    fn from_delta(before: [u64; 5]) -> WarmStats {
        let after = WarmStats::snapshot();
        let d = |i: usize| after[i].saturating_sub(before[i]);
        WarmStats {
            warm_starts: d(0),
            segments_reused: d(1),
            inner_iters_saved: d(2),
            seed_hints_adopted: d(3),
            seed_hints_rejected: d(4),
        }
    }

    fn print_human(&self) {
        if self.warm_starts > 0 || self.seed_hints_adopted + self.seed_hints_rejected > 0 {
            println!(
                "warm-start: {} warm resets, {} segments carried, {} inner derivations saved, \
                 seed hints {} adopted / {} rejected",
                self.warm_starts,
                self.segments_reused,
                self.inner_iters_saved,
                self.seed_hints_adopted,
                self.seed_hints_rejected,
            );
        }
    }
}

/// Pool section of the `sweep` report: dynamic-scheduling statistics from
/// the `pool.*` counter deltas of one pooled evaluation, plus the engine's
/// scratch-reuse count (DESIGN.md §12).
#[derive(Serialize)]
struct PoolStats {
    threads: usize,
    chunks_claimed: u64,
    chunks_stolen: u64,
    steal_ratio: f64,
    scratch_reuses: u64,
}

impl PoolStats {
    /// Snapshot of the always-on pool/scratch counters, for delta-ing
    /// around one pooled evaluation.
    fn snapshot() -> [u64; 3] {
        [
            cpa_obs::counter("pool.chunks_claimed").get(),
            cpa_obs::counter("pool.chunks_stolen").get(),
            cpa_obs::counter("engine.scratch_reuses").get(),
        ]
    }

    fn from_delta(before: [u64; 3], threads: usize) -> PoolStats {
        let after = PoolStats::snapshot();
        let d = |i: usize| after[i].saturating_sub(before[i]);
        let (claimed, stolen) = (d(0), d(1));
        PoolStats {
            threads,
            chunks_claimed: claimed,
            chunks_stolen: stolen,
            steal_ratio: if claimed == 0 {
                0.0
            } else {
                stolen as f64 / claimed as f64
            },
            scratch_reuses: d(2),
        }
    }
}

/// One per-configuration row of the `sweep --json` report.
#[derive(Serialize)]
struct SweepConfigRow {
    bus: &'static str,
    mode: &'static str,
    schedulable: u64,
    samples: u64,
}

/// The `sweep --json` report (profile spliced in separately).
#[derive(Serialize)]
struct SweepDoc {
    command: &'static str,
    seed: u64,
    sets: usize,
    pool: PoolStats,
    warm: WarmStats,
    configs: Vec<SweepConfigRow>,
}

/// Search section of the `optimize` report: design-space search activity
/// from the `optimize.*` counter deltas across both batch runs
/// (DESIGN.md §13).
#[derive(Serialize)]
struct OptimizeStats {
    candidates: u64,
    cache_hits: u64,
    cache_misses: u64,
    moves_accepted: u64,
    moves_rejected: u64,
    restarts: u64,
    exhaustive_runs: u64,
    improved: u64,
}

impl OptimizeStats {
    /// Snapshot of the always-on optimizer counters, for delta-ing around
    /// the cold + warm batch runs.
    fn snapshot() -> [u64; 8] {
        [
            cpa_obs::counter("optimize.candidates").get(),
            cpa_obs::counter("optimize.cache_hits").get(),
            cpa_obs::counter("optimize.cache_misses").get(),
            cpa_obs::counter("optimize.moves_accepted").get(),
            cpa_obs::counter("optimize.moves_rejected").get(),
            cpa_obs::counter("optimize.restarts").get(),
            cpa_obs::counter("optimize.exhaustive_runs").get(),
            cpa_obs::counter("optimize.improved").get(),
        ]
    }

    fn from_delta(before: [u64; 8]) -> OptimizeStats {
        let after = OptimizeStats::snapshot();
        let d = |i: usize| after[i].saturating_sub(before[i]);
        OptimizeStats {
            candidates: d(0),
            cache_hits: d(1),
            cache_misses: d(2),
            moves_accepted: d(3),
            moves_rejected: d(4),
            restarts: d(5),
            exhaustive_runs: d(6),
            improved: d(7),
        }
    }
}

/// The `optimize --json` report (profile spliced in separately): one toy
/// batch run cold, then again warm against the same in-memory cache.
#[derive(Serialize)]
struct OptimizeDoc {
    command: &'static str,
    seed: u64,
    sets: usize,
    replay_identical: bool,
    counters: OptimizeStats,
    warm_start: WarmStats,
    cold: cpa_optimize::BatchStats,
    warm: cpa_optimize::BatchStats,
}

/// The `analyze --json` report (profile spliced in separately).
#[derive(Serialize)]
struct AnalyzeDoc {
    command: &'static str,
    seed: u64,
    bus: &'static str,
    mode: &'static str,
    schedulable: bool,
    outer_iterations: u32,
    hit_outer_cap: bool,
    engine: EngineStats,
    warm: WarmStats,
    tasks: Vec<AnalyzeTaskRow>,
}

/// One row of the `sim --json` report.
#[derive(Serialize)]
struct SimTaskRow {
    task: String,
    core: usize,
    released: u64,
    completed: u64,
    max_response: u64,
    deadline_misses: u64,
}

/// Event-skip section of the `sim` report, from the `sim.*` counter
/// deltas of this run (see `cpa_sim::Simulator::run`).
#[derive(Serialize)]
struct SkipStats {
    spans: u64,
    cycles_skipped: u64,
    cycles_stepped: u64,
    mean_span: f64,
    skip_ratio: f64,
}

impl SkipStats {
    /// Snapshot of the always-on simulator counters, for delta-ing around
    /// one simulation run.
    fn snapshot() -> [u64; 3] {
        [
            cpa_obs::counter("sim.skip_spans").get(),
            cpa_obs::counter("sim.cycles_skipped").get(),
            cpa_obs::counter("sim.cycles_stepped").get(),
        ]
    }

    fn from_delta(before: [u64; 3], horizon: u64) -> SkipStats {
        let after = SkipStats::snapshot();
        let d = |i: usize| after[i].saturating_sub(before[i]);
        let (spans, skipped, stepped) = (d(0), d(1), d(2));
        SkipStats {
            spans,
            cycles_skipped: skipped,
            cycles_stepped: stepped,
            mean_span: if spans == 0 {
                0.0
            } else {
                skipped as f64 / spans as f64
            },
            skip_ratio: if horizon == 0 {
                0.0
            } else {
                skipped as f64 / horizon as f64
            },
        }
    }
}

/// The `sim --json` report (profile spliced in separately).
#[derive(Serialize)]
struct SimDoc {
    command: &'static str,
    seed: u64,
    bus: &'static str,
    horizon: u64,
    no_deadline_misses: bool,
    bus_transactions: u64,
    bus_busy_cycles: u64,
    bus_utilization: f64,
    skip: SkipStats,
    tasks: Vec<SimTaskRow>,
}

const USAGE: &str = "usage: cpa-trace analyze [--seed S] [--cores N] [--tasks-per-core K] \
[--util U] [--bus fp|rr|tdma|perfect] [--slots K] [--mode aware|oblivious] [SINKS]\n       \
cpa-trace sim [--seed S] [--cores N] [--tasks-per-core K] [--util U] [--bus fp|rr|tdma] \
[--slots K] [--horizon H] [--reference-sim] [SINKS]\n       \
cpa-trace sweep [--seed S] [--cores N] [--tasks-per-core K] [--util U] \
[--bus fp|rr|tdma|perfect] [--slots K] [--sets N] [--threads T] [--chunk C] [SINKS]\n       \
cpa-trace optimize [--seed S] [--cores N] [--tasks-per-core K] [--util U] \
[--bus fp|rr|tdma|perfect] [--slots K] [--mode aware|oblivious] [--sets N] [--threads T] \
[--chunk C] [SINKS]\n       \
cpa-trace bench diff --baseline FILE --current FILE [--current FILE ...] [--threshold F] \
[--min-speedup STAGE=K ...] [--json]\n\
SINKS: [--trace FILE] [--profile FILE] [--json] [--export chrome|openmetrics|json] \
[--export-out FILE]";

/// Everything both subcommands share.
struct TraceOptions {
    seed: u64,
    cores: usize,
    tasks_per_core: usize,
    util: f64,
    bus: String,
    slots: u64,
    mode: String,
    horizon: u64,
    sets: usize,
    threads: usize,
    chunk: usize,
    trace_path: Option<PathBuf>,
    profile_path: Option<PathBuf>,
    json: bool,
    reference_sim: bool,
    export: Option<String>,
    export_out: Option<PathBuf>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            seed: 42,
            cores: 2,
            tasks_per_core: 4,
            util: 0.3,
            bus: "fp".to_string(),
            slots: 2,
            mode: "aware".to_string(),
            horizon: 1_500_000,
            sets: 32,
            threads: 0,
            chunk: 0,
            trace_path: None,
            profile_path: None,
            json: false,
            reference_sim: false,
            export: None,
            export_out: None,
        }
    }
}

impl TraceOptions {
    fn parse(args: &mut Args) -> Result<TraceOptions, String> {
        let mut opts = TraceOptions::default();
        while let Some(arg) = args.next_arg() {
            match arg.as_str() {
                "--seed" => opts.seed = args.value_for("--seed").map_err(|e| e.to_string())?,
                "--cores" => opts.cores = args.value_for("--cores").map_err(|e| e.to_string())?,
                "--tasks-per-core" => {
                    opts.tasks_per_core = args
                        .value_for("--tasks-per-core")
                        .map_err(|e| e.to_string())?;
                }
                "--util" => opts.util = args.value_for("--util").map_err(|e| e.to_string())?,
                "--bus" => opts.bus = args.value_for("--bus").map_err(|e| e.to_string())?,
                "--slots" => opts.slots = args.value_for("--slots").map_err(|e| e.to_string())?,
                "--mode" => opts.mode = args.value_for("--mode").map_err(|e| e.to_string())?,
                "--horizon" => {
                    opts.horizon = args.value_for("--horizon").map_err(|e| e.to_string())?;
                }
                "--sets" => opts.sets = args.value_for("--sets").map_err(|e| e.to_string())?,
                "--threads" => {
                    opts.threads = args.value_for("--threads").map_err(|e| e.to_string())?;
                }
                "--chunk" => opts.chunk = args.value_for("--chunk").map_err(|e| e.to_string())?,
                "--trace" => {
                    opts.trace_path = Some(args.value_for("--trace").map_err(|e| e.to_string())?);
                }
                "--profile" => {
                    opts.profile_path =
                        Some(args.value_for("--profile").map_err(|e| e.to_string())?);
                }
                "--json" => opts.json = true,
                "--reference-sim" => opts.reference_sim = true,
                "--export" => {
                    let format: String = args.value_for("--export").map_err(|e| e.to_string())?;
                    if !matches!(format.as_str(), "chrome" | "openmetrics" | "json") {
                        return Err(format!(
                            "unknown export format `{format}` (expected chrome, openmetrics, \
                             or json)"
                        ));
                    }
                    opts.export = Some(format);
                }
                "--export-out" => {
                    opts.export_out =
                        Some(args.value_for("--export-out").map_err(|e| e.to_string())?);
                }
                "--help" | "-h" => return Err(args.help().to_string()),
                other => return Err(args.unknown_flag(other).to_string()),
            }
        }
        Ok(opts)
    }

    fn bus_policy(&self) -> Result<BusPolicy, String> {
        BusPolicy::parse(&self.bus, self.slots).ok_or_else(|| {
            format!(
                "unknown bus `{}` (expected fp, rr, tdma, or perfect)",
                self.bus
            )
        })
    }

    fn persistence(&self) -> Result<PersistenceMode, String> {
        match self.mode.as_str() {
            "aware" => Ok(PersistenceMode::Aware),
            "oblivious" => Ok(PersistenceMode::Oblivious),
            other => Err(format!(
                "unknown mode `{other}` (expected aware or oblivious)"
            )),
        }
    }

    fn workload(&self) -> Result<(GeneratorConfig, Platform, TaskSet), String> {
        let config = GeneratorConfig {
            cores: self.cores,
            tasks_per_core: self.tasks_per_core,
            ..GeneratorConfig::paper_default()
        }
        .with_per_core_utilization(self.util);
        let generator = TaskSetGenerator::new(config.clone()).map_err(|e| e.to_string())?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let tasks = generator.generate(&mut rng).map_err(|e| e.to_string())?;
        let platform = platform_for_tasks(&tasks, config.d_mem).map_err(|e| e.to_string())?;
        Ok((config, platform, tasks))
    }

    fn describe(&self, config: &GeneratorConfig) -> String {
        format!(
            "task set: seed {:#x}, {} cores x {} tasks, util {:.2}/core, d_mem {}",
            self.seed,
            self.cores,
            self.tasks_per_core,
            self.util,
            config.d_mem.cycles()
        )
    }
}

fn main() -> ExitCode {
    let mut args = Args::from_env(USAGE);
    match args.next_arg().as_deref() {
        Some("analyze") => dispatch(&mut args, analyze_cmd),
        Some("sim") => dispatch(&mut args, sim_cmd),
        Some("sweep") => dispatch(&mut args, sweep_cmd),
        Some("optimize") => dispatch(&mut args, optimize_cmd),
        Some("bench") => bench_cmd(&mut args),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("{}", args.unknown_flag(other));
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &mut Args, cmd: fn(&TraceOptions) -> Result<(), String>) -> ExitCode {
    let opts = match TraceOptions::parse(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    cpa_obs::enable();
    cpa_obs::set_scope(0);
    match cmd(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn analyze_cmd(opts: &TraceOptions) -> Result<(), String> {
    let bus = opts.bus_policy()?;
    let mode = opts.persistence()?;
    let (gen_config, platform, tasks) = opts.workload()?;
    let ctx = AnalysisContext::new(&platform, &tasks).map_err(|e| e.to_string())?;
    let config = AnalysisConfig::new(bus, mode);
    let counters_before = EngineStats::snapshot();
    let warm_before = WarmStats::snapshot();
    let result = analyze(&ctx, &config);
    let engine = EngineStats::from_delta(counters_before, result.outer_iterations());
    let warm = WarmStats::from_delta(warm_before);

    // Decomposition windows: the fixed point where one exists, the
    // deadline (the last window the sufficiency test probed) otherwise.
    let windows: Vec<Time> = tasks
        .ids()
        .map(|i| {
            result
                .response_time(i)
                .unwrap_or_else(|| tasks[i].deadline())
        })
        .collect();
    let decompositions: Vec<_> = tasks
        .ids()
        .map(|i| decompose(&ctx, &config, i, windows[i.index()], &windows))
        .collect();

    let run = finish_run(opts)?;
    if run.exported_to_stdout {
        return Ok(());
    }

    if opts.json {
        let task_rows: Vec<AnalyzeTaskRow> = tasks
            .ids()
            .map(|i| {
                let task = &tasks[i];
                let d = &decompositions[i.index()];
                AnalyzeTaskRow {
                    task: task.name().to_string(),
                    core: task.core().index(),
                    priority: task.priority().level(),
                    wcrt: result.response_time(i).map(|t| t.cycles()),
                    deadline: task.deadline().cycles(),
                    converged: result.converged(i),
                    inner_iterations: result.inner_iterations(i),
                    dominant: d.dominant().label(),
                    bas: d.bas_accesses,
                    bao: d.bao_accesses,
                    cpro: d.cpro_accesses,
                    crpd: d.crpd_accesses,
                    blocking: d.blocking_accesses,
                }
            })
            .collect();
        let doc = AnalyzeDoc {
            command: "analyze",
            seed: opts.seed,
            bus: bus.label(),
            mode: mode.label(),
            schedulable: result.is_schedulable(),
            outer_iterations: result.outer_iterations(),
            hit_outer_cap: result.hit_outer_iteration_cap(),
            engine,
            warm,
            tasks: task_rows,
        };
        println!("{}", with_profile(&doc, &run)?);
        return Ok(());
    }

    println!("{}", opts.describe(&gen_config));
    println!(
        "analysis: bus {}, persistence {} ({} outer sweeps{})",
        bus.label(),
        mode.label(),
        result.outer_iterations(),
        if result.hit_outer_iteration_cap() {
            ", OUTER CAP HIT"
        } else {
            ""
        }
    );
    println!(
        "engine: curve cache {:.1}% hit ({} hits / {} misses; same-core {}/{}, \
         bao {}/{}); worklist solved {}, skipped {} over {} rounds (mean depth {:.1})",
        engine.curve_hit_rate * 100.0,
        engine.curve_hits,
        engine.curve_misses,
        engine.same_core_hits,
        engine.same_core_misses,
        engine.bao_hits,
        engine.bao_misses,
        engine.tasks_solved,
        engine.tasks_skipped,
        engine.worklist_rounds,
        engine.mean_worklist_depth,
    );
    if engine.scratch_reuses > 0 {
        println!("engine: {} scratch reuses", engine.scratch_reuses);
    }
    warm.print_human();
    println!();
    println!(
        "{:<14} {:>4} {:>4} {:>10} {:>10} {:>5} {:>7}  {:<8} shares",
        "task", "core", "prio", "wcrt", "deadline", "conv", "inner", "dominant"
    );
    for i in tasks.ids() {
        let task = &tasks[i];
        let d = &decompositions[i.index()];
        let wcrt = result
            .response_time(i)
            .map_or_else(|| "-".to_string(), |t| t.cycles().to_string());
        let shares = [
            DominantTerm::Bas,
            DominantTerm::Bao,
            DominantTerm::Cpro,
            DominantTerm::Crpd,
        ]
        .map(|t| format!("{}={:.1}%", t.label(), d.share(t) * 100.0))
        .join(" ");
        println!(
            "{:<14} {:>4} {:>4} {:>10} {:>10} {:>5} {:>7}  {:<8} {}",
            task.name(),
            task.core().index(),
            task.priority().level(),
            wcrt,
            task.deadline().cycles(),
            if result.converged(i) { "yes" } else { "no" },
            result.inner_iterations(i),
            d.dominant().label(),
            shares
        );
    }
    println!();
    println!(
        "schedulable: {}",
        if result.is_schedulable() { "yes" } else { "no" }
    );
    print_stages(&run.stages);
    print_profile(&run.profile);
    Ok(())
}

fn sim_cmd(opts: &TraceOptions) -> Result<(), String> {
    let bus = opts.bus_policy()?;
    let (gen_config, platform, tasks) = opts.workload()?;
    let horizon = horizon_for(&tasks, opts.horizon);
    let config = SimConfig::new(arbitration_of(bus)).with_horizon(horizon);
    let sim = Simulator::new(&platform, &tasks, config).map_err(|e| e.to_string())?;
    let counters_before = SkipStats::snapshot();
    let report = if opts.reference_sim {
        sim.run_reference()
    } else {
        sim.run()
    };
    let skip = SkipStats::from_delta(counters_before, report.horizon.cycles());

    let run = finish_run(opts)?;
    if run.exported_to_stdout {
        return Ok(());
    }

    if opts.json {
        let doc = SimDoc {
            command: "sim",
            seed: opts.seed,
            bus: bus.label(),
            horizon: report.horizon.cycles(),
            no_deadline_misses: report.no_deadline_misses(),
            bus_transactions: report.bus_transactions,
            bus_busy_cycles: report.bus_busy_cycles,
            bus_utilization: report.bus_utilization(),
            skip,
            tasks: task_sim_rows(&tasks, &report),
        };
        println!("{}", with_profile(&doc, &run)?);
        return Ok(());
    }

    println!("{}", opts.describe(&gen_config));
    println!(
        "simulation: bus {}, horizon {} cycles{}",
        bus.label(),
        report.horizon.cycles(),
        if opts.reference_sim {
            " (cycle-stepped reference)"
        } else {
            ""
        }
    );
    println!(
        "event-skip: {} spans jumped {} cycles (mean span {:.1}), {} stepped ({:.1}% of the horizon skipped)",
        skip.spans,
        skip.cycles_skipped,
        skip.mean_span,
        skip.cycles_stepped,
        skip.skip_ratio * 100.0,
    );
    println!();
    println!(
        "{:<14} {:>4} {:>9} {:>9} {:>12} {:>7}",
        "task", "core", "released", "completed", "max_response", "misses"
    );
    for i in tasks.ids() {
        let task = &tasks[i];
        let stats = report.task(i);
        println!(
            "{:<14} {:>4} {:>9} {:>9} {:>12} {:>7}",
            task.name(),
            task.core().index(),
            stats.released,
            stats.completed,
            stats.max_response.cycles(),
            stats.deadline_misses
        );
    }
    println!();
    println!(
        "bus: {} transactions, {} busy cycles, {:.1}% occupancy",
        report.bus_transactions,
        report.bus_busy_cycles,
        report.bus_utilization() * 100.0
    );
    print_stages(&run.stages);
    print_profile(&run.profile);
    Ok(())
}

fn sweep_cmd(opts: &TraceOptions) -> Result<(), String> {
    let bus = opts.bus_policy()?;
    let gen_config = GeneratorConfig {
        cores: opts.cores,
        tasks_per_core: opts.tasks_per_core,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(opts.util);
    let configs = [
        AnalysisConfig::new(bus, PersistenceMode::Aware),
        AnalysisConfig::new(bus, PersistenceMode::Oblivious),
    ];
    let mut sweep = SweepOptions::quick()
        .with_sets_per_point(opts.sets)
        .with_chunk(opts.chunk);
    sweep.seed = opts.seed;
    sweep.threads = opts.threads;
    let threads = cpa_pool::resolve_threads(opts.threads);

    let counters_before = PoolStats::snapshot();
    let warm_before = WarmStats::snapshot();
    let point = evaluate_point(&gen_config, &configs, &sweep, 0);
    let pool = PoolStats::from_delta(counters_before, threads);
    let warm = WarmStats::from_delta(warm_before);

    let run = finish_run(opts)?;
    if run.exported_to_stdout {
        return Ok(());
    }

    let rows: Vec<SweepConfigRow> = configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| SweepConfigRow {
            bus: cfg.bus.label(),
            mode: cfg.persistence.label(),
            schedulable: point.config(i).schedulable_count(),
            samples: point.config(i).samples(),
        })
        .collect();

    if opts.json {
        let doc = SweepDoc {
            command: "sweep",
            seed: opts.seed,
            sets: opts.sets,
            pool,
            warm,
            configs: rows,
        };
        println!("{}", with_profile(&doc, &run)?);
        return Ok(());
    }

    println!("{}", opts.describe(&gen_config));
    println!(
        "sweep: {} task sets x {} configs on {} worker threads",
        opts.sets,
        configs.len(),
        pool.threads,
    );
    println!(
        "pool: {} chunks claimed, {} stolen beyond the fair share ({:.1}% steal ratio); \
         {} scratch reuses",
        pool.chunks_claimed,
        pool.chunks_stolen,
        pool.steal_ratio * 100.0,
        pool.scratch_reuses,
    );
    warm.print_human();
    println!();
    for row in &rows {
        println!(
            "{:<10} {:<10} schedulable {}/{}",
            row.bus, row.mode, row.schedulable, row.samples
        );
    }
    print_stages(&run.stages);
    print_profile(&run.profile);
    Ok(())
}

fn optimize_cmd(opts: &TraceOptions) -> Result<(), String> {
    // Validate the labels up front for consistent CLI errors.
    opts.bus_policy()?;
    opts.persistence()?;
    let gen = cpa_optimize::GenOptions {
        sets: opts.sets,
        seed: opts.seed,
        cores: opts.cores,
        tasks_per_core: opts.tasks_per_core,
        util: opts.util,
        bus: opts.bus.clone(),
        slots: opts.slots,
        mode: opts.mode.clone(),
        toy: true,
        ..cpa_optimize::GenOptions::default()
    };
    let batch = cpa_optimize::gen_batch(&gen)?;
    let service = cpa_optimize::ServiceOptions {
        threads: opts.threads,
        chunk: opts.chunk,
        ..cpa_optimize::ServiceOptions::default()
    };

    // Run the same batch twice against one cache: the cold run searches,
    // the warm run must replay the exact bytes from the cache.
    let counters_before = OptimizeStats::snapshot();
    let warm_before = WarmStats::snapshot();
    let mut cache = cpa_optimize::ResultCache::in_memory();
    let (cold_doc, cold) = cpa_optimize::process_batch(&batch, &service, &mut cache)?;
    let (warm_doc, warm) = cpa_optimize::process_batch(&batch, &service, &mut cache)?;
    let counters = OptimizeStats::from_delta(counters_before);
    let warm_start = WarmStats::from_delta(warm_before);
    let replay_identical = cold_doc == warm_doc;

    let run = finish_run(opts)?;
    if run.exported_to_stdout {
        return Ok(());
    }

    if opts.json {
        let doc = OptimizeDoc {
            command: "optimize",
            seed: opts.seed,
            sets: opts.sets,
            replay_identical,
            counters,
            warm_start,
            cold,
            warm,
        };
        println!("{}", with_profile(&doc, &run)?);
        return Ok(());
    }

    println!(
        "optimize: {} requests, seed {:#x}, {} cores x {} tasks, util {:.2}/core, bus {}/{}",
        opts.sets, opts.seed, opts.cores, opts.tasks_per_core, opts.util, opts.bus, opts.mode
    );
    println!(
        "search: {} candidates evaluated, {} restarts, {} exhaustive run(s); \
         {} moves accepted, {} rejected",
        counters.candidates,
        counters.restarts,
        counters.exhaustive_runs,
        counters.moves_accepted,
        counters.moves_rejected,
    );
    println!(
        "cache: {} hits, {} misses across cold+warm; warm replay byte-identical: {}",
        counters.cache_hits, counters.cache_misses, replay_identical
    );
    warm_start.print_human();
    println!(
        "verdicts: default schedulable {}/{}, optimized {}/{}, strictly improved {}",
        cold.schedulable_default,
        cold.requests,
        cold.schedulable_optimized,
        cold.requests,
        cold.strictly_improved,
    );
    print_stages(&run.stages);
    print_profile(&run.profile);
    Ok(())
}

fn task_sim_rows(tasks: &TaskSet, report: &SimReport) -> Vec<SimTaskRow> {
    tasks
        .ids()
        .map(|i| {
            let stats = report.task(i);
            SimTaskRow {
                task: tasks[i].name().to_string(),
                core: tasks[i].core().index(),
                released: stats.released,
                completed: stats.completed,
                max_response: stats.max_response.cycles(),
                deadline_misses: stats.deadline_misses,
            }
        })
        .collect()
}

/// Everything a run subcommand needs after its workload finished: the
/// span-tree profile, the per-stage attribution, and whether an
/// `--export` document already claimed stdout (suppressing the report).
struct RunArtifacts {
    profile: cpa_obs::ProfileNode,
    stages: StageReport,
    exported_to_stdout: bool,
}

/// Drains the event buffer once, writes the `--trace`/`--profile` sinks,
/// captures the profile + stage breakdown, and renders any `--export`.
fn finish_run(opts: &TraceOptions) -> Result<RunArtifacts, String> {
    let events = cpa_obs::take_events();
    write_sinks(opts, &events)?;
    let profile = cpa_obs::profile_snapshot();
    // Counters start at zero in this process, so the full snapshot is
    // exactly this run's delta.
    let stages = StageReport::from_parts(&cpa_obs::metrics_snapshot(), &profile);
    let exported_to_stdout = write_export(opts, &events, &profile, &stages)?;
    Ok(RunArtifacts {
        profile,
        stages,
        exported_to_stdout,
    })
}

/// Renders the `--export` document, if one was requested. Returns `true`
/// when the export went to stdout (replacing the report), `false` when it
/// went to `--export-out` or no export was requested.
fn write_export(
    opts: &TraceOptions,
    events: &[cpa_obs::Event],
    profile: &cpa_obs::ProfileNode,
    stages: &StageReport,
) -> Result<bool, String> {
    let Some(format) = opts.export.as_deref() else {
        return Ok(false);
    };
    let body = match format {
        "chrome" => chrome_trace(events, profile, ExportScope::Deterministic),
        "openmetrics" => openmetrics(&cpa_obs::metrics_snapshot(), ExportScope::Deterministic),
        "json" => format!("{}\n", stages.to_json()),
        other => return Err(format!("unknown export format `{other}`")),
    };
    match &opts.export_out {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
            Ok(false)
        }
        None => {
            print!("{body}");
            Ok(true)
        }
    }
}

/// Serializes `doc` and splices the stage breakdown and span-tree profile
/// in as top-level `"stages"` / `"profile"` keys (both render their own
/// JSON).
fn with_profile<T: Serialize>(doc: &T, run: &RunArtifacts) -> Result<String, String> {
    let body = serde_json::to_string(doc).map_err(|e| e.to_string())?;
    let without_brace = body
        .strip_suffix('}')
        .ok_or_else(|| "report did not serialize to a JSON object".to_string())?;
    Ok(format!(
        "{without_brace},\"stages\":{},\"profile\":{}}}",
        run.stages.to_json(),
        run.profile.to_json()
    ))
}

/// Writes the `--trace` / `--profile` sinks from the drained event buffer.
fn write_sinks(opts: &TraceOptions, events: &[cpa_obs::Event]) -> Result<(), String> {
    if let Some(path) = &opts.trace_path {
        let lines = cpa_obs::events_to_json_lines(events);
        std::fs::write(path, lines).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &opts.profile_path {
        let doc = format!(
            "{{\"metrics\":{},\"profile\":{}}}\n",
            cpa_obs::metrics_snapshot().to_json(),
            cpa_obs::profile_snapshot().to_json()
        );
        std::fs::write(path, doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn print_stages(stages: &StageReport) {
    println!();
    println!("stage breakdown:");
    print!("{}", stages.render_text());
}

/// `cpa-trace bench ...`: exit 0 when the gate passes, 1 when it reports
/// a regression (or missing data), 2 on usage/parse errors.
fn bench_cmd(args: &mut Args) -> ExitCode {
    match args.next_arg().as_deref() {
        Some("diff") => {}
        Some("--help" | "-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown bench subcommand `{other}` (expected diff)\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("bench needs a subcommand (expected diff)\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    match bench_diff(args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Compares baseline and current `BenchRecord` files; returns `Ok(false)`
/// when the gate fails (throughput regression beyond `--threshold`, a
/// bench or metric missing from the current set, or a failed in-record
/// gate).
fn bench_diff(args: &mut Args) -> Result<bool, String> {
    let mut baseline_path: Option<String> = None;
    let mut current_paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_REGRESSION_THRESHOLD;
    let mut minimums: Vec<(String, f64)> = Vec::new();
    let mut json = false;
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--baseline" => {
                baseline_path = Some(args.value_for("--baseline").map_err(|e| e.to_string())?);
            }
            "--current" => {
                current_paths.push(args.value_for("--current").map_err(|e| e.to_string())?);
            }
            "--threshold" => {
                threshold = args.value_for("--threshold").map_err(|e| e.to_string())?;
                if !(0.0..1.0).contains(&threshold) {
                    return Err(format!("--threshold must be in [0, 1), got {threshold}"));
                }
            }
            "--min-speedup" => {
                let spec: String = args.value_for("--min-speedup").map_err(|e| e.to_string())?;
                minimums.push(parse_min_speedup(&spec)?);
            }
            "--json" => json = true,
            "--help" | "-h" => return Err(args.help().to_string()),
            other => return Err(args.unknown_flag(other).to_string()),
        }
    }
    let baseline_path =
        baseline_path.ok_or_else(|| format!("bench diff needs --baseline\n{USAGE}"))?;
    if current_paths.is_empty() {
        return Err(format!("bench diff needs at least one --current\n{USAGE}"));
    }
    let baseline = load_records(&baseline_path)?;
    let mut current = Vec::new();
    for path in &current_paths {
        current.extend(load_records(path)?);
    }
    let mut diff = diff_records(&baseline, &current, threshold);
    diff.enforce_minimums(&current, &minimums);
    if json {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render_text());
    }
    Ok(diff.pass())
}

fn print_profile(profile: &cpa_obs::ProfileNode) {
    println!();
    println!("self-profile:");
    print!("{}", profile.render_text());
}
