//! Campaign driver for the differential validation subsystem.
//!
//! ```text
//! cpa-validate run [--sets N] [--seed S] [--threads T] [--slots K] [--quick]
//!                  [--inject none|soundness|dominance] [--report FILE]
//!                  [--repro-dir DIR] [--max-shrinks M] [--no-progress]
//!                  [--trace FILE] [--metrics FILE] [--reference-sim]
//! cpa-validate replay FILE...
//! ```
//!
//! `run` prints the JSON report to stdout (or `--report FILE`) and exits
//! non-zero when any oracle fired; violations are minimized and written as
//! replayable repro files under `--repro-dir`. `replay` re-executes stored
//! repros and exits non-zero when one no longer reproduces.
//!
//! `--trace FILE` enables the `cpa-obs` event subscriber and writes the
//! canonical JSON-lines event stream after the campaign (deterministic:
//! same seed and set count produce byte-identical output regardless of
//! `--threads`). `--metrics FILE` enables timing collection only and
//! writes a JSON document with counters, histograms, and the span-tree
//! self-profile.
//!
//! `--reference-sim` drives the cycle-stepped reference simulator loop
//! instead of the default event-skipping fast path. The two are pinned
//! byte-identical (DESIGN.md §11), so the campaign verdict is unchanged —
//! the flag exists as a cross-check and for timing comparisons.

use std::path::PathBuf;
use std::process::ExitCode;

use cpa_experiments::cli::{Args, ObsSinks};
use cpa_validate::repro::REPRO_SCHEMA;
use cpa_validate::{run_campaign, shrink_case, CampaignOptions, OracleKind, Repro, ViolationCase};

const USAGE: &str = "usage: cpa-validate run [--sets N] [--seed S] [--threads T] [--slots K] \
[--quick] [--inject none|soundness|dominance] [--report FILE] [--repro-dir DIR] \
[--max-shrinks M] [--no-progress] [--trace FILE] [--metrics FILE] [--reference-sim]\n       \
cpa-validate replay FILE...";

fn main() -> ExitCode {
    let mut args = Args::from_env(USAGE);
    match args.next_arg().as_deref() {
        Some("run") => run_cmd(args),
        Some("replay") => replay_cmd(args),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("{}", args.unknown_flag(other));
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_cmd(mut args: Args) -> ExitCode {
    let mut opts = CampaignOptions::new();
    opts.progress = true;
    let mut report_path: Option<PathBuf> = None;
    let mut sinks = ObsSinks::default();
    let mut repro_dir = PathBuf::from("validate-repros");
    let mut max_shrinks: usize = 3;
    while let Some(arg) = args.next_arg() {
        let parsed: Result<(), String> = (|| {
            if opts
                .apply_cli_flag(&mut args, arg.as_str())
                .map_err(|e| e.to_string())?
            {
                return Ok(());
            }
            if sinks
                .apply_flag(&mut args, arg.as_str())
                .map_err(|e| e.to_string())?
            {
                return Ok(());
            }
            match arg.as_str() {
                "--report" => {
                    report_path = Some(args.value_for("--report").map_err(|e| e.to_string())?);
                }
                "--repro-dir" => {
                    repro_dir = args.value_for("--repro-dir").map_err(|e| e.to_string())?;
                }
                "--max-shrinks" => {
                    max_shrinks = args.value_for("--max-shrinks").map_err(|e| e.to_string())?;
                }
                "--help" | "-h" => return Err(args.help().to_string()),
                other => return Err(args.unknown_flag(other).to_string()),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }

    sinks.enable();

    eprintln!(
        "campaign: {} sets, seed {:#x}, {} threads, {} profile, inject {}",
        opts.sets,
        opts.seed,
        opts.worker_threads(),
        if opts.quick { "quick" } else { "full" },
        opts.inject
    );
    let mut outcome = run_campaign(&opts);

    if let Err(e) = sinks.write() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }

    let shrinks = outcome.cases.len().min(max_shrinks);
    for case in outcome.cases.iter().take(shrinks) {
        match write_repro(case, &opts, &repro_dir) {
            Ok(path) => {
                for record in outcome
                    .report
                    .stats
                    .violations
                    .iter_mut()
                    .filter(|r| r.set_index == case.set_index)
                {
                    record.repro = Some(path.clone());
                }
            }
            Err(msg) => eprintln!("warning: {msg}"),
        }
    }

    eprintln!("{}", outcome.report.summary());
    let json = outcome.report.to_json();
    match &report_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("wrote {}", path.display());
        }
        None => println!("{json}"),
    }
    if outcome.report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Minimizes one case and writes its repro file; returns the path.
fn write_repro(
    case: &ViolationCase,
    opts: &CampaignOptions,
    repro_dir: &std::path::Path,
) -> Result<String, String> {
    let mut check = opts.check_options();
    check.sporadic_seed = case.set_seed;
    check.determinism = case.violation.oracle == OracleKind::Determinism;

    let (tasks, message, minimized) = match shrink_case(case, &check) {
        Some(shrunk) => {
            eprintln!(
                "shrunk set {}: {} -> {} tasks in {} evaluations",
                case.set_index,
                case.tasks.len(),
                shrunk.tasks.len(),
                shrunk.evaluations
            );
            (shrunk.tasks, shrunk.violation.message, true)
        }
        None => (case.tasks.clone(), case.violation.message.clone(), false),
    };
    let repro = Repro {
        schema: REPRO_SCHEMA,
        description: format!(
            "{}{} violation found by `cpa-validate run --seed {:#x}` at set {}",
            case.violation.oracle,
            if minimized {
                " (minimized)"
            } else {
                " (unminimized)"
            },
            opts.seed,
            case.set_index
        ),
        campaign_seed: opts.seed,
        set_index: case.set_index,
        set_seed: case.set_seed,
        d_mem: case.d_mem.cycles(),
        options: check,
        oracle: case.violation.oracle,
        message,
        tasks,
    };
    std::fs::create_dir_all(repro_dir)
        .map_err(|e| format!("cannot create {}: {e}", repro_dir.display()))?;
    let path = repro_dir.join(format!(
        "repro-set{}-{}.json",
        case.set_index,
        case.violation.oracle.label()
    ));
    repro
        .write(&path)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(path.display().to_string())
}

fn replay_cmd(mut args: Args) -> ExitCode {
    let mut files = Vec::new();
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", args.usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("{}", args.unknown_flag(other));
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        eprintln!("replay needs at least one repro file\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut all_reproduced = true;
    for file in &files {
        let repro = match Repro::load(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let replay = match repro.replay() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        if replay.reproduced {
            println!(
                "{}: {} violation reproduced ({} tasks): {}",
                file.display(),
                repro.oracle,
                repro.tasks.len(),
                replay
                    .outcome
                    .violations
                    .iter()
                    .find(|v| v.oracle == repro.oracle)
                    .map_or("", |v| v.message.as_str())
            );
        } else {
            all_reproduced = false;
            println!(
                "{}: {} violation did NOT reproduce (recorded: {})",
                file.display(),
                repro.oracle,
                repro.message
            );
        }
    }
    if all_reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
