//! Parallel, deterministic validation campaigns.
//!
//! A campaign draws `sets` randomized task sets and runs the full oracle
//! bundle ([`crate::oracle::check_task_set`]) on each. Seeding follows the
//! same discipline as `cpa_experiments::runner`: every task set's RNG
//! stream is derived from `(base seed, campaign tag, set index)` via
//! [`derive_seed`], and the sets are dispatched through the shared
//! [`cpa_pool`] worker pool, which returns per-set outcomes in set-index
//! order regardless of how workers interleaved. Campaigns with the same
//! options therefore produce byte-equal [`CampaignStats`] (and retained
//! [`ViolationCase`]s) whether they run on 1 thread or 16.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use cpa_analysis::{AnalysisScratch, ContextBuffers};
use cpa_experiments::cli::{Args, CliError};
use cpa_experiments::runner::{derive_seed, platform_for};
use cpa_model::{TaskSet, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::oracle::{check_task_set_with, CheckOptions, Inject, OracleKind, Violation};
use crate::report::{
    CampaignStats, OptionsSummary, OracleStats, ValidationReport, ViolationRecord, REPORT_SCHEMA,
};

/// Campaign tag mixed into [`derive_seed`] so validation streams never
/// collide with the experiment sweeps (which use their point ids).
pub const CAMPAIGN_POINT: u64 = 0x5AFE;

/// Run the (expensive) determinism oracle on every `DETERMINISM_STRIDE`-th
/// set rather than all of them.
const DETERMINISM_STRIDE: u64 = 8;

/// At most this many full violation cases (task set included) are kept for
/// shrinking, lowest set indices first; every violation still lands in the
/// report. The cap is applied during the index-ordered merge, so the
/// retained cases are identical at any thread count (the old per-worker
/// cap made them depend on how sets were striped across workers).
const MAX_CASES: usize = 16;

/// Options for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Number of task sets to validate.
    pub sets: u64,
    /// Base seed; everything else derives from it.
    pub seed: u64,
    /// Worker threads; `0` picks a value from the available parallelism.
    pub threads: usize,
    /// RR/TDMA slot count.
    pub slots: u64,
    /// Use the cheap smoke profile (short horizon, synchronous releases
    /// only, one CRPD approach).
    pub quick: bool,
    /// Fault injection, for exercising the violation pipeline.
    pub inject: Inject,
    /// Stream progress to stderr.
    pub progress: bool,
    /// Drive the cycle-stepped reference simulator instead of the default
    /// event-skipping fast path (`--reference-sim`).
    pub reference_sim: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            sets: 1000,
            seed: 0x0DA7_E202_0001,
            threads: 0,
            slots: 2,
            quick: false,
            inject: Inject::None,
            progress: false,
            reference_sim: false,
        }
    }
}

impl CampaignOptions {
    /// Default options (1000 sets, full profile).
    #[must_use]
    pub fn new() -> Self {
        CampaignOptions::default()
    }

    /// Sets the number of task sets.
    #[must_use]
    pub fn with_sets(mut self, sets: u64) -> Self {
        self.sets = sets;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggles the quick smoke profile.
    #[must_use]
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Sets the fault-injection mode.
    #[must_use]
    pub fn with_inject(mut self, inject: Inject) -> Self {
        self.inject = inject;
        self
    }

    /// Toggles the cycle-stepped reference simulator escape hatch.
    #[must_use]
    pub fn with_reference_sim(mut self, reference_sim: bool) -> Self {
        self.reference_sim = reference_sim;
        self
    }

    /// Applies one campaign-related flag, consuming its value from `args`.
    /// Returns `Ok(true)` when `flag` was one of the shared campaign flags
    /// (`--sets`, `--seed`, `--threads`, `--slots`, `--quick`, `--inject`,
    /// `--reference-sim`, `--no-progress`) and `Ok(false)` when the caller
    /// should handle it itself.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] when the flag's value is missing or
    /// malformed.
    pub fn apply_cli_flag(&mut self, args: &mut Args, flag: &str) -> Result<bool, CliError> {
        match flag {
            "--sets" => self.sets = args.value_for("--sets")?,
            "--seed" => self.seed = args.value_for("--seed")?,
            "--threads" => self.threads = args.value_for("--threads")?,
            "--slots" => self.slots = args.value_for("--slots")?,
            "--quick" => self.quick = true,
            "--inject" => self.inject = args.value_for("--inject")?,
            "--reference-sim" => self.reference_sim = true,
            "--no-progress" => self.progress = false,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Worker threads to use, resolving `0` via the workspace-wide policy
    /// in [`cpa_pool::resolve_threads`] (auto-detection capped at
    /// [`cpa_pool::MAX_AUTO_THREADS`], matching the experiment runner).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        cpa_pool::resolve_threads(self.threads)
    }

    /// The oracle bundle configuration these options imply.
    #[must_use]
    pub fn check_options(&self) -> CheckOptions {
        let mut check = if self.quick {
            CheckOptions::quick()
        } else {
            CheckOptions::new()
        };
        check.slots = self.slots;
        check.inject = self.inject;
        check.reference_sim = self.reference_sim;
        check
    }
}

/// A violation together with the full task set that produced it — the
/// input to the shrinker.
#[derive(Debug, Clone)]
pub struct ViolationCase {
    /// Campaign-wide set index.
    pub set_index: u64,
    /// Derived seed that regenerates the set.
    pub set_seed: u64,
    /// Memory latency the set was validated with.
    pub d_mem: Time,
    /// The offending task set.
    pub tasks: TaskSet,
    /// The first violation the oracle bundle recorded for it.
    pub violation: Violation,
}

/// Result of [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The structured report (serialize with [`ValidationReport::to_json`]).
    pub report: ValidationReport,
    /// Violation cases retained for shrinking, ordered by set index.
    pub cases: Vec<ViolationCase>,
}

/// The randomized per-set workload profile: small two-core sets across a
/// band of per-core utilizations, drawn deterministically from `set_seed`.
/// Returns the configuration and the RNG (already advanced past the
/// profile draws) that generation must continue from.
fn profile_for(set_seed: u64) -> (GeneratorConfig, ChaCha8Rng) {
    let mut rng = ChaCha8Rng::seed_from_u64(set_seed);
    let utilization = rng.gen_range(0.10..0.55);
    let tasks_per_core = rng.gen_range(3usize..6);
    let cache_sets = if rng.gen_bool(0.5) { 256 } else { 128 };
    let mut config = GeneratorConfig {
        cores: 2,
        tasks_per_core,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(utilization)
    .with_cache_sets(cache_sets);
    config.d_mem = GeneratorConfig::paper_default().d_mem;
    (config, rng)
}

/// Everything one validated set contributes to the campaign. Produced by
/// [`validate_one_set`] inside the pool and folded into [`CampaignStats`]
/// in set-index order.
#[derive(Default)]
struct SetOutcome {
    checked: bool,
    generation_failure: bool,
    schedulable: bool,
    oracles: OracleStats,
    records: Vec<ViolationRecord>,
    /// The first violation of the set, retained for shrinking.
    case: Option<ViolationCase>,
}

/// Runs a validation campaign.
///
/// # Panics
///
/// Panics if a worker thread panics (which only happens on internal
/// invariant failures, not on oracle violations — those are reported).
#[must_use]
pub fn run_campaign(opts: &CampaignOptions) -> CampaignOutcome {
    let _span = cpa_obs::span!("campaign.run");
    let started = Instant::now();
    let sets = opts.sets;
    let threads = opts.worker_threads();
    let base_check = opts.check_options();
    let base_seed = opts.seed;
    let pool_opts = cpa_pool::PoolOptions::new().with_threads(threads);
    // One scope epoch per campaign. A fresh process (and every campaign
    // after `cpa_obs::reset()`) gets epoch 0, and `scope_key(0, set)`
    // equals `set`, so the trace bytes match the historical scheme of
    // scoping events by raw set index.
    let epoch = cpa_obs::next_scope_epoch();

    // Progress and `--metrics` share one code path: workers bump the
    // always-on `campaign.sets_validated` counter and the progress thread
    // polls it (relative to the campaign's starting value, since counters
    // are cumulative across campaigns in one process).
    let validated = cpa_obs::counter("campaign.sets_validated");
    let validated_base = validated.get();
    let done = AtomicBool::new(false);
    let mut outcomes: Vec<SetOutcome> = Vec::new();
    std::thread::scope(|scope| {
        if opts.progress {
            let done = &done;
            scope.spawn(move || {
                let mut last = u64::MAX;
                while !done.load(Ordering::Relaxed) {
                    let n = validated.get() - validated_base;
                    if n != last {
                        eprint!("\rvalidated {n}/{sets} task sets");
                        last = n;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
                eprintln!(
                    "\rvalidated {}/{sets} task sets",
                    validated.get() - validated_base
                );
            });
        }
        let items = usize::try_from(sets).expect("set count fits in usize");
        outcomes = cpa_pool::map(
            items,
            pool_opts,
            epoch,
            // One engine scratch + context-table buffers per worker:
            // allocations amortize across the worker's whole stream of
            // sets, while warm-start retention stays within one set
            // (`check_task_set_with` forgets warm state on entry).
            |_worker| (AnalysisScratch::new(), ContextBuffers::new()),
            |(scratch, buffers), set| {
                let outcome =
                    validate_one_set(set as u64, base_seed, &base_check, scratch, buffers);
                validated.incr();
                outcome
            },
        );
        done.store(true, Ordering::Relaxed);
    });

    // `cpa_pool::map` returns outcomes in set-index order no matter how
    // workers interleaved, so folding them sequentially yields the same
    // stats — and the same first-`MAX_CASES` retained cases — at any
    // thread count, with no post-hoc sorting.
    let mut stats = CampaignStats::default();
    let mut cases = Vec::new();
    for outcome in outcomes {
        stats.checked_sets += u64::from(outcome.checked);
        stats.generation_failures += u64::from(outcome.generation_failure);
        stats.schedulable_sets += u64::from(outcome.schedulable);
        stats.oracles.merge(&outcome.oracles);
        stats.violations.extend(outcome.records);
        if cases.len() < MAX_CASES {
            cases.extend(outcome.case);
        }
    }
    cpa_obs::counter("campaign.checked_sets").add(stats.checked_sets);
    cpa_obs::counter("campaign.generation_failures").add(stats.generation_failures);
    cpa_obs::counter("campaign.schedulable_sets").add(stats.schedulable_sets);
    cpa_obs::counter("campaign.violations").add(stats.violations.len() as u64);

    let wall_clock_secs = started.elapsed().as_secs_f64();
    let report = ValidationReport {
        schema: REPORT_SCHEMA,
        options: OptionsSummary {
            sets,
            seed: opts.seed,
            threads,
            slots: opts.slots,
            quick: opts.quick,
            inject: opts.inject.label().to_string(),
            reference_sim: opts.reference_sim,
        },
        stats,
        wall_clock_secs,
        sets_per_second: if wall_clock_secs > 0.0 {
            sets as f64 / wall_clock_secs
        } else {
            0.0
        },
    };
    CampaignOutcome { report, cases }
}

fn validate_one_set(
    set: u64,
    base_seed: u64,
    base_check: &CheckOptions,
    scratch: &mut AnalysisScratch,
    buffers: &mut ContextBuffers,
) -> SetOutcome {
    let mut outcome = SetOutcome::default();
    let set_seed = derive_seed(base_seed, CAMPAIGN_POINT, set);
    let (config, mut rng) = profile_for(set_seed);
    let generator = TaskSetGenerator::new(config.clone())
        .expect("campaign profiles are always valid generator configs");
    let Ok(tasks) = generator.generate(&mut rng) else {
        outcome.generation_failure = true;
        cpa_obs::event!("campaign.generation_failure", set = set, seed = set_seed);
        return outcome;
    };
    let platform = platform_for(&config);

    let mut check = base_check.clone();
    check.sporadic_seed = set_seed;
    check.determinism = set.is_multiple_of(DETERMINISM_STRIDE);

    // Generation determinism: the same derived seed must reproduce the
    // task set exactly (folded into the determinism oracle).
    if check.determinism {
        let (config_again, mut rng_again) = profile_for(set_seed);
        let regenerated = TaskSetGenerator::new(config_again)
            .ok()
            .and_then(|g| g.generate(&mut rng_again).ok());
        let stat = outcome.oracles.stat_mut(OracleKind::Determinism);
        stat.checks += 1;
        if regenerated.as_ref() != Some(&tasks) {
            stat.violations += 1;
            record_violation(
                &mut outcome,
                set,
                set_seed,
                config.d_mem,
                &tasks,
                Violation {
                    oracle: OracleKind::Determinism,
                    message: "regenerating from the same seed produced a different task set"
                        .to_string(),
                },
            );
        }
    }

    let checked = check_task_set_with(&platform, &tasks, &check, scratch, buffers)
        .expect("generated task sets always fit their platform");
    outcome.checked = true;
    outcome.schedulable = checked.any_schedulable;
    outcome.oracles.merge(&checked.stats);
    cpa_obs::event!(
        "campaign.set_done",
        set = set,
        seed = set_seed,
        tasks = tasks.len(),
        schedulable = checked.any_schedulable,
        violations = checked.violations.len(),
    );
    for violation in checked.violations {
        record_violation(&mut outcome, set, set_seed, config.d_mem, &tasks, violation);
    }
    outcome
}

fn record_violation(
    outcome: &mut SetOutcome,
    set: u64,
    set_seed: u64,
    d_mem: Time,
    tasks: &TaskSet,
    violation: Violation,
) {
    outcome.records.push(ViolationRecord {
        set_index: set,
        set_seed,
        oracle: violation.oracle,
        message: violation.message.clone(),
        repro: None,
    });
    // Keep one shrinkable case per set: the first violation.
    if outcome.case.is_none() {
        outcome.case = Some(ViolationCase {
            set_index: set,
            set_seed,
            d_mem,
            tasks: tasks.clone(),
            violation,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(sets: u64) -> CampaignOptions {
        CampaignOptions::new()
            .with_sets(sets)
            .with_quick(true)
            .with_seed(42)
    }

    #[test]
    fn clean_campaign_passes_and_counts_every_set() {
        let outcome = run_campaign(&quick_opts(6));
        assert!(outcome.report.passed(), "{}", outcome.report.summary());
        assert_eq!(outcome.report.stats.checked_sets, 6);
        assert!(outcome.report.stats.oracles.total_checks() > 0);
        assert!(outcome.cases.is_empty());
    }

    #[test]
    fn campaign_stats_are_thread_count_invariant() {
        let single = run_campaign(&quick_opts(5).with_threads(1));
        let multi = run_campaign(&quick_opts(5).with_threads(4));
        assert_eq!(single.report.stats, multi.report.stats);
    }

    #[test]
    fn injected_faults_surface_as_cases_and_records() {
        let outcome = run_campaign(&quick_opts(4).with_inject(Inject::Soundness));
        assert!(!outcome.report.passed());
        assert!(!outcome.cases.is_empty());
        assert!(outcome
            .report
            .stats
            .violations
            .iter()
            .all(|v| v.oracle == OracleKind::Soundness));
        // Cases arrive sorted and reference sets the report also lists.
        let indices: Vec<u64> = outcome.cases.iter().map(|c| c.set_index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }

    #[test]
    fn cli_flags_reach_campaign_options() {
        let mut args = Args::new(["12", "9", "3", "4"].map(String::from), "usage: test");
        let mut opts = CampaignOptions::new();
        for flag in ["--sets", "--seed", "--threads", "--slots"] {
            assert_eq!(opts.apply_cli_flag(&mut args, flag), Ok(true));
        }
        for flag in ["--quick", "--reference-sim", "--no-progress"] {
            assert_eq!(opts.apply_cli_flag(&mut args, flag), Ok(true));
        }
        assert_eq!(opts.sets, 12);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 3);
        // Explicit thread requests resolve verbatim, above the auto cap.
        assert_eq!(opts.worker_threads(), 3);
        assert_eq!(opts.slots, 4);
        assert!(opts.quick);
        assert!(opts.reference_sim);
        assert!(!opts.progress);
        // Binary-specific flags fall through to the caller.
        let mut args = Args::new(std::iter::empty::<String>(), "usage: test");
        assert_eq!(opts.apply_cli_flag(&mut args, "--report"), Ok(false));
    }

    #[test]
    fn profile_is_deterministic_in_the_seed() {
        let (a, _) = profile_for(99);
        let (b, _) = profile_for(99);
        assert_eq!(a.per_core_utilization, b.per_core_utilization);
        assert_eq!(a.tasks_per_core, b.tasks_per_core);
        assert_eq!(a.cache_sets, b.cache_sets);
    }
}
