//! Self-contained, replayable violation repro files.
//!
//! A [`Repro`] bundles everything needed to re-execute one oracle
//! violation: the (minimized) task set itself, the platform and oracle
//! parameters it was checked with, and provenance back to the campaign
//! that found it. `cpa-validate replay <file>` re-runs the bundle and
//! reports whether the stored oracle still fires — no access to the
//! original campaign or its seeds required.

use std::fmt;
use std::path::Path;

use cpa_model::{TaskSet, Time};
use serde::{Deserialize, Serialize};

use crate::oracle::{check_task_set, platform_for_tasks, CheckOptions, OracleKind, SetOutcome};

/// Current repro file schema version.
pub const REPRO_SCHEMA: u32 = 1;

/// A self-contained violation reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repro {
    /// Repro file schema version.
    pub schema: u32,
    /// Human-readable description of the finding.
    pub description: String,
    /// Base seed of the campaign that found the violation.
    pub campaign_seed: u64,
    /// Campaign-wide index of the originating task set.
    pub set_index: u64,
    /// Derived per-set seed.
    pub set_seed: u64,
    /// Memory latency `d_mem` (cycles) of the validated platform.
    pub d_mem: u64,
    /// Oracle-bundle options the violation was found (and replays) under.
    pub options: CheckOptions,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// The recorded violation message.
    pub message: String,
    /// The minimized task set.
    pub tasks: TaskSet,
}

/// Failure to load or replay a repro file.
#[derive(Debug)]
pub enum ReproError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file is not a valid repro document.
    Parse(String),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Io(e) => write!(f, "cannot read repro file: {e}"),
            ReproError::Parse(msg) => write!(f, "invalid repro file: {msg}"),
        }
    }
}

impl std::error::Error for ReproError {}

/// Result of replaying a repro.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Whether the stored oracle fired again.
    pub reproduced: bool,
    /// The full oracle-bundle outcome of the replay.
    pub outcome: SetOutcome,
}

impl Repro {
    /// Pretty-printed JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro serialization is infallible")
    }

    /// Parses a repro document.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Parse`] for malformed JSON, schema mismatches,
    /// or an embedded task set that fails model validation.
    pub fn from_json(json: &str) -> Result<Self, ReproError> {
        let repro: Repro =
            serde_json::from_str(json).map_err(|e| ReproError::Parse(e.to_string()))?;
        if repro.schema != REPRO_SCHEMA {
            return Err(ReproError::Parse(format!(
                "unsupported schema {} (this build reads schema {REPRO_SCHEMA})",
                repro.schema
            )));
        }
        Ok(repro)
    }

    /// Writes the repro to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Loads a repro from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError`] for unreadable files or malformed documents.
    pub fn load(path: &Path) -> Result<Self, ReproError> {
        let json = std::fs::read_to_string(path).map_err(ReproError::Io)?;
        Repro::from_json(&json)
    }

    /// Re-runs the oracle bundle on the embedded task set.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Parse`] when the embedded task set does not
    /// fit any platform (corrupted document).
    pub fn replay(&self) -> Result<ReplayOutcome, ReproError> {
        let platform = platform_for_tasks(&self.tasks, Time::from_cycles(self.d_mem))
            .map_err(|e| ReproError::Parse(e.to_string()))?;
        let outcome = check_task_set(&platform, &self.tasks, &self.options)
            .map_err(|e| ReproError::Parse(e.to_string()))?;
        let reproduced = outcome.violations.iter().any(|v| v.oracle == self.oracle);
        Ok(ReplayOutcome {
            reproduced,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignOptions};
    use crate::oracle::Inject;
    use crate::shrink::shrink_case;

    fn injected_repro() -> Repro {
        let opts = CampaignOptions::new()
            .with_sets(2)
            .with_quick(true)
            .with_seed(42)
            .with_inject(Inject::Soundness);
        let outcome = run_campaign(&opts);
        let case = outcome.cases.first().expect("injection produces a case");
        let check = opts.check_options();
        let shrunk = shrink_case(case, &check).expect("violation reproduces");
        Repro {
            schema: REPRO_SCHEMA,
            description: "test repro".to_string(),
            campaign_seed: opts.seed,
            set_index: case.set_index,
            set_seed: case.set_seed,
            d_mem: case.d_mem.cycles(),
            options: check,
            oracle: case.violation.oracle,
            message: shrunk.violation.message,
            tasks: shrunk.tasks,
        }
    }

    #[test]
    fn repro_round_trips_and_replays() {
        let repro = injected_repro();
        let parsed = Repro::from_json(&repro.to_json()).expect("round-trips");
        assert_eq!(parsed, repro);
        let replay = parsed.replay().expect("replayable");
        assert!(replay.reproduced, "minimized repro must reproduce");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut repro = injected_repro();
        repro.schema = 99;
        let err = Repro::from_json(&repro.to_json()).unwrap_err();
        assert!(err.to_string().contains("unsupported schema 99"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Repro::from_json("not json").is_err());
    }
}
