//! End-to-end CLI contract for `cpa-trace`: every subcommand must fail
//! with exit code 2 and a diagnostic (never a panic) on malformed input,
//! the telemetry exports must be byte-identical across worker counts and
//! chunk sizes, and `bench diff` must gate regressions with exit code 1.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cpa_trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cpa-trace"))
        .args(args)
        .output()
        .expect("spawn cpa-trace")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch path under the system temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpa-trace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[track_caller]
fn assert_usage_error(args: &[&str], needle: &str) {
    let out = cpa_trace(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {}",
        stderr_of(&out)
    );
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains(needle),
        "{args:?} stderr missing `{needle}`: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
}

#[test]
fn analyze_rejects_unknown_bus_with_a_diagnostic() {
    assert_usage_error(&["analyze", "--bus", "warp"], "unknown bus `warp`");
}

#[test]
fn sim_rejects_malformed_horizon_with_a_diagnostic() {
    assert_usage_error(&["sim", "--horizon", "soon"], "--horizon");
}

#[test]
fn sweep_rejects_unknown_flags_with_usage() {
    assert_usage_error(&["sweep", "--setz", "4"], "unknown flag `--setz`");
}

#[test]
fn optimize_rejects_unknown_mode_with_a_diagnostic() {
    assert_usage_error(&["optimize", "--mode", "chaotic"], "unknown mode `chaotic`");
}

#[test]
fn unknown_subcommand_exits_with_usage() {
    assert_usage_error(&["replay"], "unknown flag `replay`");
}

#[test]
fn export_rejects_unknown_formats_before_running() {
    assert_usage_error(
        &["sweep", "--export", "protobuf"],
        "unknown export format `protobuf`",
    );
}

#[test]
fn unwritable_trace_sink_is_reported_not_panicked() {
    assert_usage_error(
        &[
            "analyze",
            "--tasks-per-core",
            "2",
            "--trace",
            "/nonexistent-dir/trace.jsonl",
        ],
        "cannot write /nonexistent-dir/trace.jsonl",
    );
}

#[test]
fn bench_without_subcommand_exits_with_usage() {
    assert_usage_error(&["bench"], "bench needs a subcommand");
}

#[test]
fn bench_diff_requires_baseline_and_current() {
    assert_usage_error(&["bench", "diff"], "bench diff needs --baseline");
    let baseline = fixture_record("fixture", 100.0);
    let path = write_fixture("only-baseline.json", &baseline);
    assert_usage_error(
        &["bench", "diff", "--baseline", path.to_str().unwrap()],
        "bench diff needs at least one --current",
    );
}

#[test]
fn bench_diff_reports_missing_files() {
    assert_usage_error(
        &[
            "bench",
            "diff",
            "--baseline",
            "/nonexistent/baseline.jsonl",
            "--current",
            "/nonexistent/current.json",
        ],
        "read /nonexistent/baseline.jsonl",
    );
}

#[test]
fn bench_diff_reports_malformed_records() {
    let path = scratch("malformed.json");
    std::fs::write(&path, "{\"bench\": truncated").expect("write fixture");
    let out = cpa_trace(&[
        "bench",
        "diff",
        "--baseline",
        path.to_str().unwrap(),
        "--current",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(!stderr_of(&out).contains("panicked"));
}

#[test]
fn bench_diff_rejects_out_of_range_thresholds() {
    assert_usage_error(
        &["bench", "diff", "--threshold", "1.5"],
        "--threshold must be in [0, 1)",
    );
}

/// One minimal BenchRecord document with a single throughput entry.
fn fixture_record(bench: &str, throughput: f64) -> String {
    format!(
        "{{\"schema\":1,\"bench\":\"{bench}\",\"workload\":\"cli-test\",\
         \"git_rev\":\"fixture00000\",\"date\":\"2026-01-01\",\
         \"config\":{{}},\"metrics\":{{}},\
         \"throughput\":{{\"items_per_sec\":{throughput}}},\"gates\":[]}}\n"
    )
}

fn write_fixture(name: &str, contents: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

#[test]
fn bench_diff_passes_within_threshold_and_fails_beyond_it() {
    let baseline = write_fixture("diff-baseline.json", &fixture_record("suite", 100.0));
    let ok = write_fixture("diff-ok.json", &fixture_record("suite", 90.0));
    let regressed = write_fixture("diff-regressed.json", &fixture_record("suite", 80.0));

    // -10% is inside the default 15% threshold: exit 0, verdict PASS.
    let out = cpa_trace(&[
        "bench",
        "diff",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        ok.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("PASS"), "{}", stdout_of(&out));

    // -20% breaches it: exit 1 (regression, not usage error).
    let out = cpa_trace(&[
        "bench",
        "diff",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        regressed.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
    let report = stdout_of(&out);
    assert!(report.contains("REGRESSED"), "{report}");
    assert!(report.contains("FAIL"), "{report}");

    // A tighter threshold flags the -10% run too.
    let out = cpa_trace(&[
        "bench",
        "diff",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        ok.to_str().unwrap(),
        "--threshold",
        "0.05",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
}

#[test]
fn bench_diff_fails_when_a_bench_disappears() {
    let baseline = write_fixture("gone-baseline.json", &fixture_record("suite", 100.0));
    let other = write_fixture("gone-current.json", &fixture_record("other_suite", 100.0));
    let out = cpa_trace(&[
        "bench",
        "diff",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        other.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
}

#[test]
fn run_reports_include_the_stage_breakdown() {
    for cmd in ["sweep", "optimize"] {
        let out = cpa_trace(&[cmd, "--sets", "3", "--tasks-per-core", "3"]);
        assert!(out.status.success(), "stderr: {}", stderr_of(&out));
        let report = stdout_of(&out);
        assert!(report.contains("stage breakdown:"), "{cmd}: {report}");
        assert!(report.contains("self-profile:"), "{cmd}: {report}");
    }
}

#[test]
fn chrome_export_is_byte_identical_across_threads_and_chunks() {
    let runs: Vec<String> = [("1", "1"), ("4", "1"), ("4", "5")]
        .iter()
        .map(|(threads, chunk)| {
            let out = cpa_trace(&[
                "sweep",
                "--sets",
                "6",
                "--threads",
                threads,
                "--chunk",
                chunk,
                "--export",
                "chrome",
            ]);
            assert!(out.status.success(), "stderr: {}", stderr_of(&out));
            stdout_of(&out)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1-vs-4 threads diverged");
    assert_eq!(runs[0], runs[2], "chunk 1-vs-5 diverged");
    // The document must be well-formed JSON with the trace-event shape.
    let doc = cpa_telemetry::parse_json(&runs[0]).expect("chrome export parses");
    let events = doc
        .get("traceEvents")
        .and_then(cpa_telemetry::JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn openmetrics_export_is_byte_identical_and_valid() {
    let runs: Vec<String> = ["1", "4"]
        .iter()
        .map(|threads| {
            let out = cpa_trace(&[
                "sweep",
                "--sets",
                "6",
                "--threads",
                threads,
                "--export",
                "openmetrics",
            ]);
            assert!(out.status.success(), "stderr: {}", stderr_of(&out));
            stdout_of(&out)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1-vs-4 threads diverged");
    let samples = cpa_telemetry::validate_openmetrics(&runs[0]).expect("exposition validates");
    assert!(samples > 0, "no samples in the exposition");
}

#[test]
fn optimize_openmetrics_export_is_byte_identical_across_threads() {
    // The optimizer warm-chains scratches per worker, so *which* candidate
    // warms which is a scheduling artifact. The warm-chain meters are
    // classified as scheduling meters and dropped from deterministic
    // exports; everything that remains — per-solve hit/miss meters
    // included, which the engine keeps bitwise-equal between warm and
    // cold runs — must not see the thread count.
    let runs: Vec<String> = ["1", "4"]
        .iter()
        .map(|threads| {
            let out = cpa_trace(&[
                "optimize",
                "--sets",
                "3",
                "--tasks-per-core",
                "3",
                "--threads",
                threads,
                "--export",
                "openmetrics",
            ]);
            assert!(out.status.success(), "stderr: {}", stderr_of(&out));
            stdout_of(&out)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1-vs-4 threads diverged");
    cpa_telemetry::validate_openmetrics(&runs[0]).expect("exposition validates");
}

#[test]
fn export_out_writes_the_file_and_keeps_the_report() {
    let path = scratch("sweep-export.json");
    let out = cpa_trace(&[
        "sweep",
        "--sets",
        "3",
        "--tasks-per-core",
        "3",
        "--export",
        "chrome",
        "--export-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    assert!(stdout_of(&out).contains("stage breakdown:"));
    let exported = std::fs::read_to_string(&path).expect("export file");
    cpa_telemetry::parse_json(&exported).expect("exported chrome trace parses");
}

#[test]
fn json_reports_embed_stages_and_profile() {
    let out = cpa_trace(&["sweep", "--sets", "3", "--tasks-per-core", "3", "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let doc = cpa_telemetry::parse_json(&stdout_of(&out)).expect("sweep --json parses");
    assert!(doc.get("stages").is_some(), "missing stages key");
    assert!(doc.get("profile").is_some(), "missing profile key");
}
