//! The event stream is deterministic by construction: payloads carry
//! iteration counts and seeds, never wall-clock values, and every event is
//! stamped with a `(scope, seq)` key assigned per task-set so the drained,
//! canonically-sorted stream does not depend on worker interleaving.
//!
//! This test pins the strongest form of that property: the *bytes* of the
//! JSON-lines sink are identical between a 1-worker and an 8-worker
//! campaign over the same seed and set count. It lives in its own
//! integration-test binary because it toggles the process-wide `cpa-obs`
//! subscriber.

use cpa_validate::{run_campaign, CampaignOptions};

fn traced_campaign(threads: usize) -> String {
    cpa_obs::reset();
    cpa_obs::enable();
    let outcome = run_campaign(
        &CampaignOptions::new()
            .with_sets(12)
            .with_seed(0xDECAF)
            .with_quick(true)
            .with_threads(threads),
    );
    cpa_obs::disable();
    assert!(outcome.report.passed(), "clean campaign expected");
    cpa_obs::events_to_json_lines(&cpa_obs::take_events())
}

#[test]
fn event_stream_bytes_are_worker_count_invariant() {
    let single = traced_campaign(1);
    let parallel = traced_campaign(8);
    assert!(!single.is_empty(), "traced campaign produced no events");
    assert!(
        single.lines().any(|l| l.contains("campaign.set_done")),
        "expected per-set events in the stream"
    );
    assert_eq!(
        single, parallel,
        "same seed must produce byte-identical traces across worker counts"
    );
}
