//! End-to-end sweep benchmark: the pooled, scratch-recycling evaluation
//! path ([`evaluate_point`]) against the pre-refactor reference
//! ([`evaluate_point_reference`]: static worker striping, per-pair
//! O(n³) context fill, one fresh scratch per analysis) on the Fig. 2
//! fixed-priority panel workload.
//!
//! Hand-rolled harness (like `analysis_engine`) rather than criterion's,
//! because this bench is also a CI gate: it writes the measured numbers to
//! `BENCH_e2e.json` and exits non-zero unless the pooled path is at least
//! [`SPEEDUP_GATE`]× faster end to end — the PR's headline acceptance
//! criterion. Both paths are cross-checked for agreement while
//! benchmarking, so a speedup obtained by diverging from the reference
//! semantics fails loudly here too.
//!
//! Both paths run on one worker thread: the gate measures the
//! algorithmic wins (incremental context fill, scratch reuse), not
//! parallel scaling, so it holds on single-core CI machines.

use std::hint::black_box;
use std::time::Instant;

use cpa_analysis::{AnalysisConfig, BusPolicy, CrpdApproach, PersistenceMode};
use cpa_experiments::runner::{evaluate_point, evaluate_point_reference, PointStats};
use cpa_experiments::SweepOptions;
use cpa_telemetry::{BenchRecord, JsonValue};
use cpa_workload::GeneratorConfig;

/// The Fig. 2 sweep's utilization grid, reduced to the span where the
/// analysis does real work (low = trivially schedulable, high = mostly
/// deadline misses; both paths are exercised).
const UTILS: &[f64] = &[0.3, 0.5, 0.7];
/// Task sets per utilization point.
const SETS_PER_POINT: usize = 16;
/// Required end-to-end speedup of the pooled path (the acceptance gate).
///
/// Honest number, measured, not aspirational: the incremental context
/// fill, scratch recycling and warm-started fixed points together hold
/// ~2.0–2.2× end to end on a single-core CI machine (both legs share the
/// same analysis engine, so engine-level wins cancel out of the ratio —
/// this gate isolates the runner-level work). Pinned below the typical
/// measurement to absorb shared-machine noise that the paired-ratio
/// timing cannot.
const SPEEDUP_GATE: f64 = 1.8;

/// The Fig. 2 fixed-priority panel's configuration triple.
fn panel_configs() -> [AnalysisConfig; 3] {
    [
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
    ]
}

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let configs = panel_configs();
    let opts = SweepOptions::paper()
        .with_sets_per_point(SETS_PER_POINT)
        .with_threads(1);
    let points: Vec<(u64, GeneratorConfig)> = UTILS
        .iter()
        .enumerate()
        .map(|(id, &util)| {
            let gen = GeneratorConfig::paper_default().with_per_core_utilization(util);
            (id as u64, gen)
        })
        .collect();

    // Semantics first: the pooled path must agree with the reference on
    // every point (exact tallies, weighted sums to rounding).
    for (point_id, gen) in &points {
        let pooled = evaluate_point(gen, &configs, &opts, *point_id);
        let reference =
            evaluate_point_reference(gen, &configs, &opts, *point_id, CrpdApproach::EcbUnion);
        for i in 0..configs.len() {
            assert_eq!(
                pooled.config(i).samples(),
                reference.config(i).samples(),
                "point {point_id} config {i}: sample counts diverged"
            );
            assert_eq!(
                pooled.config(i).schedulable_count(),
                reference.config(i).schedulable_count(),
                "point {point_id} config {i}: pooled path diverged from reference"
            );
            assert!(
                (pooled.config(i).value() - reference.config(i).value()).abs() < 1e-9,
                "point {point_id} config {i}: weighted sums diverged"
            );
        }
    }

    let (reference_ns, pooled_ns, speedup) = time_paired(&points, &configs, &opts);
    eprintln!(
        "fig2 FP panel   reference {reference_ns:>12.0} ns/panel   \
         pooled {pooled_ns:>12.0} ns/panel   speedup {speedup:.2}x (median of paired ratios)"
    );

    let pass = speedup >= SPEEDUP_GATE;
    let panels_per_sec = 1e9 / pooled_ns;
    let mut record = BenchRecord::new("sweep_e2e", "fig2_fp_panel");
    record.push_config(
        "utils",
        JsonValue::Array(UTILS.iter().map(|&u| JsonValue::F64(u)).collect()),
    );
    record.push_config("sets_per_point", SETS_PER_POINT as u64);
    record.push_config("threads", 1u64);
    record.push_metric("reference_ns", reference_ns.round());
    record.push_metric("pooled_ns", pooled_ns.round());
    record.push_throughput("panels_per_sec", panels_per_sec);
    record.push_throughput("fig2_fp_panel_speedup", speedup);
    record.push_gate("fig2_fp_panel_speedup", speedup, SPEEDUP_GATE, pass);
    // Anchor to the workspace root: `cargo bench` sets the CWD to the
    // crate directory, but the gate artifact belongs next to ci.sh.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e2e.json");
    record.write_json_file(out).expect("write BENCH_e2e.json");
    record
        .append_history(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_history.jsonl"
        ))
        .expect("append bench history");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!("FAIL: e2e panel speedup {speedup:.2}x below the {SPEEDUP_GATE}x gate");
        std::process::exit(1);
    }
}

/// Times both paths as *interleaved pairs* — reference panel, then pooled
/// panel, five times after one untimed warm-up of each — and reports the
/// medians plus the median of the five per-pair speedups. A machine-wide
/// slow phase (this runs on shared single-core CI boxes) hits the two
/// legs of a pair roughly equally, so the ratio survives noise that would
/// poison independently-timed medians.
fn time_paired(
    points: &[(u64, GeneratorConfig)],
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
) -> (f64, f64, f64) {
    const PAIRS: usize = 5;
    let panel = |f: fn(&GeneratorConfig, &[AnalysisConfig], &SweepOptions, u64) -> PointStats| {
        let start = Instant::now();
        for (point_id, gen) in points {
            black_box(f(
                black_box(gen),
                black_box(configs),
                black_box(opts),
                *point_id,
            ));
        }
        start.elapsed().as_nanos() as f64
    };
    let reference = |gen: &GeneratorConfig, configs: &[AnalysisConfig], opts: &SweepOptions, id| {
        evaluate_point_reference(gen, configs, opts, id, CrpdApproach::EcbUnion)
    };
    let pooled = |gen: &GeneratorConfig, configs: &[AnalysisConfig], opts: &SweepOptions, id| {
        evaluate_point(gen, configs, opts, id)
    };
    panel(reference);
    panel(pooled);
    let mut ref_runs = [0.0f64; PAIRS];
    let mut pool_runs = [0.0f64; PAIRS];
    let mut ratios = [0.0f64; PAIRS];
    for i in 0..PAIRS {
        ref_runs[i] = panel(reference);
        pool_runs[i] = panel(pooled);
        ratios[i] = ref_runs[i] / pool_runs[i];
    }
    ref_runs.sort_by(f64::total_cmp);
    pool_runs.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    (ref_runs[PAIRS / 2], pool_runs[PAIRS / 2], ratios[PAIRS / 2])
}
