//! Optimizer gate: on a fig2-style utilization panel the optimized
//! configurations must weakly dominate the defaults — no request may get
//! *worse*, schedulability-wise — and at least one seeded set must be
//! strictly improved. Also reports search throughput (candidates/sec).
//!
//! Hand-rolled harness (like `sweep_e2e`): this bench is a CI gate. It
//! writes the measured numbers to `BENCH_optimize.json` and exits
//! non-zero on a dominance or improvement failure. Weak dominance is
//! structural — the search always evaluates the default configuration
//! first and keeps it as the fallback best — so a failure here means that
//! invariant broke.

use std::time::Instant;

use cpa_optimize::{gen_batch, process_batch, GenOptions, ResultCache, ServiceOptions};
use cpa_telemetry::{BenchRecord, JsonValue};

/// Per-core utilization points, straddling the schedulability cliff so
/// the panel contains easy, marginal, and hopeless defaults.
const UTILS: &[f64] = &[0.4, 0.5, 0.6];
/// Requests per utilization point.
const SETS_PER_UTIL: usize = 4;

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let service = ServiceOptions::default();
    let mut requests = 0u64;
    let mut schedulable_default = 0u64;
    let mut schedulable_optimized = 0u64;
    let mut strictly_improved = 0u64;
    let mut candidates = 0u64;
    let mut dominance_violations = 0u64;

    let counters_before = cpa_obs::counter("optimize.candidates").get();
    let start = Instant::now();
    for &util in UTILS {
        let gen = GenOptions {
            sets: SETS_PER_UTIL,
            seed: 42,
            cores: 2,
            tasks_per_core: 3,
            cache_sets: 32,
            util,
            toy: true,
            ..GenOptions::default()
        };
        let batch = gen_batch(&gen).expect("panel batch generates");
        let mut cache = ResultCache::in_memory();
        let (body, stats) = process_batch(&batch, &service, &mut cache).expect("panel processes");
        requests += stats.requests;
        schedulable_default += stats.schedulable_default;
        schedulable_optimized += stats.schedulable_optimized;
        strictly_improved += stats.strictly_improved;
        candidates += stats.candidates;
        // Weak dominance per request: a schedulable default must stay
        // schedulable after optimization. One response document per line.
        for line in body.lines().filter(|l| l.starts_with('{')) {
            if line.contains("\"schedulable_default\":true")
                && !line.contains("\"schedulable_optimized\":true")
            {
                dominance_violations += 1;
                eprintln!("dominance violation: {line}");
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let counter_candidates = cpa_obs::counter("optimize.candidates").get() - counters_before;
    assert_eq!(
        candidates, counter_candidates,
        "batch stats and optimize.candidates counter disagree"
    );
    let candidates_per_sec = if elapsed > 0.0 {
        candidates as f64 / elapsed
    } else {
        0.0
    };

    eprintln!(
        "optimize panel  {requests} requests   default {schedulable_default} schedulable   \
         optimized {schedulable_optimized}   improved {strictly_improved}   \
         {candidates} candidates in {elapsed:.2}s ({candidates_per_sec:.0}/s)"
    );

    let dominance_pass = dominance_violations == 0 && schedulable_optimized >= schedulable_default;
    let improvement_pass = strictly_improved >= 1;
    let pass = dominance_pass && improvement_pass;
    let mut record = BenchRecord::new("optimize", "fig2_style_panel");
    record.push_config(
        "utils",
        JsonValue::Array(UTILS.iter().map(|&u| JsonValue::F64(u)).collect()),
    );
    record.push_config("sets_per_util", SETS_PER_UTIL as u64);
    record.push_metric("requests", requests);
    record.push_metric("schedulable_default", schedulable_default);
    record.push_metric("schedulable_optimized", schedulable_optimized);
    record.push_metric("strictly_improved", strictly_improved);
    record.push_metric("candidates", candidates);
    record.push_throughput("candidates_per_sec", candidates_per_sec);
    record.push_gate(
        "weak_dominance_violations",
        dominance_violations as f64,
        0.0,
        dominance_pass,
    );
    record.push_gate(
        "strict_improvement",
        strictly_improved as f64,
        1.0,
        improvement_pass,
    );
    // Anchor to the workspace root: `cargo bench` sets the CWD to the
    // crate directory, but the gate artifact belongs next to ci.sh.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimize.json");
    record
        .write_json_file(out)
        .expect("write BENCH_optimize.json");
    record
        .append_history(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_history.jsonl"
        ))
        .expect("append bench history");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!(
            "FAIL: weak dominance {dominance_pass} (violations {dominance_violations}), \
             strict improvement {improvement_pass} ({strictly_improved} improved)"
        );
        std::process::exit(1);
    }
}
