//! Optimizer gate: on a fig2-style utilization panel the optimized
//! configurations must weakly dominate the defaults — no request may get
//! *worse*, schedulability-wise — and at least one seeded set must be
//! strictly improved. Also reports search throughput (candidates/sec).
//!
//! The panel runs twice: once with `full_eval` (every candidate solved
//! cold, independently — the acceptance baseline) and once on the
//! default delta-scoped pipeline (admission pruning + solve memo +
//! partial re-solve + warm chaining). The two legs must produce
//! byte-identical response bodies; their elapsed-time ratio is exported
//! as `delta_eval_speedup` (paired, same process, same panel), and the
//! gain over the recorded pre-pipeline throughput is exported as
//! `optimize_speedup`, which ci.sh floors via `--min-speedup`.
//!
//! Hand-rolled harness (like `sweep_e2e`): this bench is a CI gate. It
//! writes the measured numbers to `BENCH_optimize.json` and exits
//! non-zero on a dominance, improvement, or equivalence failure. Weak
//! dominance is structural — the search always evaluates the default
//! configuration first and keeps it as the fallback best — so a failure
//! here means that invariant broke.

use std::time::Instant;

use cpa_optimize::{gen_batch, process_batch, GenOptions, ResultCache, ServiceOptions};
use cpa_telemetry::{BenchRecord, JsonValue};

/// Per-core utilization points, straddling the schedulability cliff so
/// the panel contains easy, marginal, and hopeless defaults. The two
/// overloaded points (0.8, 0.9) are where admission pruning carries the
/// search: most random-walk moves push a core past the residual
/// utilization bound and are rejected without an engine call.
const UTILS: &[f64] = &[0.4, 0.5, 0.6, 0.8, 0.9, 0.95];
/// Requests per utilization point.
const SETS_PER_UTIL: usize = 16;
/// Timed repetitions per panel point; the minimum is kept. The panel
/// runs in well under a second, so single runs are at the mercy of
/// scheduler noise on a shared CI box — the minimum over a few runs is
/// the standard stable estimator of the actual cost.
const REPS: usize = 5;

/// One full pass over the utilization panel under one service mode.
struct Leg {
    bodies: Vec<String>,
    requests: u64,
    schedulable_default: u64,
    schedulable_optimized: u64,
    strictly_improved: u64,
    candidates: u64,
    dominance_violations: u64,
    elapsed: f64,
}

fn run_panel(service: &ServiceOptions) -> Leg {
    let mut leg = Leg {
        bodies: Vec::with_capacity(UTILS.len()),
        requests: 0,
        schedulable_default: 0,
        schedulable_optimized: 0,
        strictly_improved: 0,
        candidates: 0,
        dominance_violations: 0,
        elapsed: 0.0,
    };
    let diag = [
        "optimize.memo_hits",
        "optimize.memo_misses",
        "optimize.pruned_candidates",
        "engine.parent_replays",
        "engine.tasks_certified",
        "engine.warm_starts",
    ];
    let diag_before: Vec<u64> = diag.iter().map(|n| cpa_obs::counter(n).get()).collect();
    let counters_before = cpa_obs::counter("optimize.candidates").get();
    for &util in UTILS {
        let gen = GenOptions {
            sets: SETS_PER_UTIL,
            seed: 42,
            cores: 2,
            tasks_per_core: 3,
            cache_sets: 32,
            util,
            toy: true,
            ..GenOptions::default()
        };
        let batch = gen_batch(&gen).expect("panel batch generates");
        // Only the service call is timed: generation and the dominance
        // scan below are harness bookkeeping, identical in both legs.
        // Each repetition starts from a fresh result cache, so every rep
        // does the full work and produces the same bytes (determinism);
        // the minimum elapsed time is kept.
        let mut point_elapsed = f64::MAX;
        let mut out = None;
        for _ in 0..REPS {
            let mut cache = ResultCache::in_memory();
            let start = Instant::now();
            let (body, stats) =
                process_batch(&batch, service, &mut cache).expect("panel processes");
            point_elapsed = point_elapsed.min(start.elapsed().as_secs_f64());
            if let Some((prev_body, _)) = &out {
                assert_eq!(prev_body, &body, "repetitions must be byte-identical");
            }
            out = Some((body, stats));
        }
        leg.elapsed += point_elapsed;
        let (body, stats) = out.expect("at least one repetition");
        leg.requests += stats.requests;
        leg.schedulable_default += stats.schedulable_default;
        leg.schedulable_optimized += stats.schedulable_optimized;
        leg.strictly_improved += stats.strictly_improved;
        leg.candidates += stats.candidates;
        // Weak dominance per request: a schedulable default must stay
        // schedulable after optimization. One response document per line.
        for line in body.lines().filter(|l| l.starts_with('{')) {
            if line.contains("\"schedulable_default\":true")
                && !line.contains("\"schedulable_optimized\":true")
            {
                leg.dominance_violations += 1;
                eprintln!("dominance violation: {line}");
            }
        }
        leg.bodies.push(body);
    }
    let counter_candidates = cpa_obs::counter("optimize.candidates").get() - counters_before;
    assert_eq!(
        leg.candidates * REPS as u64,
        counter_candidates,
        "batch stats and optimize.candidates counter disagree"
    );
    let deltas: Vec<String> = diag
        .iter()
        .zip(diag_before)
        .map(|(n, b)| {
            format!(
                "{}={}",
                n.rsplit('.').next().unwrap(),
                cpa_obs::counter(n).get() - b
            )
        })
        .collect();
    eprintln!("  leg counters: {}", deltas.join(" "));
    leg
}

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    // Full-evaluation leg first: it is the semantic reference, and the
    // order gives neither leg a warmed process (each leg builds its own
    // caches from scratch per utilization point anyway).
    let full = run_panel(&ServiceOptions {
        full_eval: true,
        ..ServiceOptions::default()
    });
    let fast = run_panel(&ServiceOptions::default());

    // Paired equivalence: the delta-scoped pipeline must reproduce the
    // full evaluation byte for byte, panel point by panel point.
    let mut equivalence_mismatches = 0u64;
    for (i, (f, d)) in full.bodies.iter().zip(fast.bodies.iter()).enumerate() {
        if f != d {
            equivalence_mismatches += 1;
            eprintln!("full/fast response mismatch at panel point {i}");
        }
    }
    assert_eq!(
        full.candidates, fast.candidates,
        "both legs must walk the same candidate sequence"
    );

    // Search throughput of the optimizer before the delta-scoped pipeline
    // landed (PR 8, recorded in results/bench_baseline.jsonl on the CI
    // machine). `optimize_speedup` is the measured gain over it; ci.sh
    // floors that ratio via `--min-speedup optimize_speedup=2.5`.
    const BASELINE_CANDIDATES_PER_SEC: f64 = 58_602.22;

    let candidates = fast.candidates;
    let candidates_per_sec = if fast.elapsed > 0.0 {
        candidates as f64 / fast.elapsed
    } else {
        0.0
    };
    let optimize_speedup = candidates_per_sec / BASELINE_CANDIDATES_PER_SEC;
    let delta_eval_speedup = if fast.elapsed > 0.0 {
        full.elapsed / fast.elapsed
    } else {
        0.0
    };

    let requests = fast.requests;
    let schedulable_default = fast.schedulable_default;
    let schedulable_optimized = fast.schedulable_optimized;
    let strictly_improved = fast.strictly_improved;
    let dominance_violations = fast.dominance_violations + full.dominance_violations;
    eprintln!(
        "optimize panel  {requests} requests   default {schedulable_default} schedulable   \
         optimized {schedulable_optimized}   improved {strictly_improved}   \
         {candidates} candidates  full {:.2}s  fast {:.2}s ({candidates_per_sec:.0}/s, \
         {optimize_speedup:.2}x vs pre-pipeline baseline, {delta_eval_speedup:.2}x paired)",
        full.elapsed, fast.elapsed
    );

    let dominance_pass = dominance_violations == 0 && schedulable_optimized >= schedulable_default;
    let improvement_pass = strictly_improved >= 1;
    let equivalence_pass = equivalence_mismatches == 0;
    let pass = dominance_pass && improvement_pass && equivalence_pass;
    let mut record = BenchRecord::new("optimize", "fig2_style_panel");
    record.push_config(
        "utils",
        JsonValue::Array(UTILS.iter().map(|&u| JsonValue::F64(u)).collect()),
    );
    record.push_config("sets_per_util", SETS_PER_UTIL as u64);
    record.push_metric("requests", requests);
    record.push_metric("schedulable_default", schedulable_default);
    record.push_metric("schedulable_optimized", schedulable_optimized);
    record.push_metric("strictly_improved", strictly_improved);
    record.push_metric("candidates", candidates);
    record.push_metric("full_eval_seconds", JsonValue::F64(full.elapsed));
    record.push_metric("fast_seconds", JsonValue::F64(fast.elapsed));
    record.push_throughput("candidates_per_sec", candidates_per_sec);
    record.push_throughput("optimize_speedup", optimize_speedup);
    record.push_throughput("delta_eval_speedup", delta_eval_speedup);
    record.push_gate(
        "weak_dominance_violations",
        dominance_violations as f64,
        0.0,
        dominance_pass,
    );
    record.push_gate(
        "strict_improvement",
        strictly_improved as f64,
        1.0,
        improvement_pass,
    );
    record.push_gate(
        "full_fast_equivalence_mismatches",
        equivalence_mismatches as f64,
        0.0,
        equivalence_pass,
    );
    // Anchor to the workspace root: `cargo bench` sets the CWD to the
    // crate directory, but the gate artifact belongs next to ci.sh.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimize.json");
    record
        .write_json_file(out)
        .expect("write BENCH_optimize.json");
    record
        .append_history(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_history.jsonl"
        ))
        .expect("append bench history");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!(
            "FAIL: weak dominance {dominance_pass} (violations {dominance_violations}), \
             strict improvement {improvement_pass} ({strictly_improved} improved), \
             full/fast equivalence {equivalence_pass} ({equivalence_mismatches} mismatches)"
        );
        std::process::exit(1);
    }
}
