//! Simulator throughput: cycles simulated per second for the three bus
//! arbiters, plus the concrete cache and static extraction substrates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cpa_cache::CacheSim;
use cpa_cfg::{trace, DecisionPolicy, ProgramGenerator, ProgramShape};
use cpa_experiments::runner::platform_for;
use cpa_model::{CacheGeometry, Time};
use cpa_sim::{BusArbitration, SimConfig, Simulator};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_sim(c: &mut Criterion) {
    let gen = GeneratorConfig {
        cores: 2,
        tasks_per_core: 4,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.25);
    let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
    let platform = platform_for(&gen);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(2))
        .expect("task set");

    let horizon = 200_000u64;
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(horizon));
    for arbitration in [
        BusArbitration::FixedPriority,
        BusArbitration::RoundRobin { slots: 2 },
        BusArbitration::Tdma { slots: 2 },
    ] {
        group.bench_function(format!("{arbitration:?}"), |b| {
            let config = SimConfig::new(arbitration).with_horizon(Time::from_cycles(horizon));
            b.iter(|| {
                let sim = Simulator::new(&platform, &tasks, config).expect("simulator");
                black_box(sim.run())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cache_substrate");
    group.sample_size(20);
    let geometry = CacheGeometry::direct_mapped(256, 32);
    let f = ProgramGenerator::new()
        .generate(ProgramShape::NestedLoops, &mut ChaCha8Rng::seed_from_u64(4))
        .expect("program");
    let t = trace::generate(&f, DecisionPolicy::HeaviestPath);
    group.throughput(Throughput::Elements(t.len() as u64));
    group.bench_function("concrete_trace_replay", |b| {
        b.iter(|| {
            let mut cache = CacheSim::new(geometry);
            black_box(cache.run_trace(&t))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
