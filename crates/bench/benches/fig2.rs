//! Fig. 2 — schedulable task sets vs core utilization (FP / RR / TDMA).
//!
//! Prints a reduced-scale version of each panel's series (the regeneration
//! artefact: same rows as the paper's plot, fewer samples), then measures
//! the per-point evaluation cost that dominates the full-scale run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpa_analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa_experiments::runner::{evaluate_point, platform_for};
use cpa_experiments::{fig2, report, SweepOptions};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fig2(c: &mut Criterion) {
    // Regeneration artefact at reduced scale.
    let opts = SweepOptions::quick()
        .with_sets_per_point(25)
        .with_utilization_grid(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
    for result in fig2::fig2(&opts) {
        println!("{}", report::to_markdown(&result));
    }

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);

    // One utilization point, all three Fig. 2 series, 10 task sets.
    let micro = SweepOptions::quick().with_sets_per_point(10);
    let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
    let configs = [
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
    ];
    group.bench_function("evaluate_point_fp_u0.3_10sets", |b| {
        b.iter(|| black_box(evaluate_point(&gen, &configs, &micro, 0)));
    });

    // Single task-set analysis across the six paper configurations.
    let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
    let platform = platform_for(&gen);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(5))
        .expect("task set");
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    for cfg in AnalysisConfig::paper_matrix(2) {
        group.bench_function(
            format!("analyze_{}_{}", cfg.bus.label(), cfg.persistence),
            |b| {
                b.iter(|| black_box(analyze(black_box(&ctx), &cfg)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
