//! Table I — benchmark parameter table and the extraction pipeline that
//! regenerates parameters of the same shape.
//!
//! Prints the table rows once (the regeneration artefact), then measures
//! the static cache analysis that produces such rows from synthetic
//! programs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpa_cache::extract::extract;
use cpa_cfg::{ProgramGenerator, ProgramShape};
use cpa_experiments::table1::table1_markdown;
use cpa_model::CacheGeometry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table1(c: &mut Criterion) {
    // Regeneration artefact: the published table, verbatim.
    println!("{}", table1_markdown(true));

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);

    group.bench_function("render_markdown", |b| {
        b.iter(|| black_box(table1_markdown(black_box(false))));
    });

    // Extraction of one program of each shape at the paper's geometry —
    // the Heptane-substitute work behind every table row.
    let generator = ProgramGenerator::new();
    let geometry = CacheGeometry::direct_mapped(256, 32);
    for shape in ProgramShape::all() {
        let function = generator
            .generate(shape, &mut ChaCha8Rng::seed_from_u64(1))
            .expect("program");
        group.bench_function(format!("extract_{shape:?}"), |b| {
            b.iter(|| black_box(extract(black_box(&function), geometry)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
