//! Fig. 3a–3d — weighted schedulability sweeps over cores, `d_mem`,
//! cache size and slot size.
//!
//! Prints reduced-scale versions of all four sweeps (the regeneration
//! artefacts), then measures one representative sweep per sub-figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpa_experiments::{fig3, report, SweepOptions};

fn reduced() -> SweepOptions {
    SweepOptions::quick()
        .with_sets_per_point(10)
        .with_utilization_grid(vec![0.15, 0.3, 0.45])
}

fn bench_fig3(c: &mut Criterion) {
    let opts = reduced();
    for result in [
        fig3::fig3a(&opts),
        fig3::fig3b(&opts),
        fig3::fig3c(&opts),
        fig3::fig3d(&opts),
    ] {
        println!("{}", report::to_markdown(&result));
    }

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    let micro = SweepOptions::quick()
        .with_sets_per_point(3)
        .with_utilization_grid(vec![0.2, 0.4]);
    group.bench_function("fig3a_cores_sweep", |b| {
        b.iter(|| black_box(fig3::fig3a(black_box(&micro))));
    });
    group.bench_function("fig3b_dmem_sweep", |b| {
        b.iter(|| black_box(fig3::fig3b(black_box(&micro))));
    });
    group.bench_function("fig3c_cache_sweep", |b| {
        b.iter(|| black_box(fig3::fig3c(black_box(&micro))));
    });
    group.bench_function("fig3d_slot_sweep", |b| {
        b.iter(|| black_box(fig3::fig3d(black_box(&micro))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
