//! Engine-vs-reference benchmark: the memoized, worklist-driven
//! [`analyze`] against the pre-refactor sweep [`analyze_reference`], per
//! bus policy, on the Fig. 2 sweep workload (paper-default task sets over
//! a utilization grid).
//!
//! Hand-rolled harness (like `obs_overhead`) rather than criterion's,
//! because this bench is also a CI gate: it writes the measured numbers to
//! `BENCH_analysis.json` and exits non-zero unless the engine is at least
//! [`SPEEDUP_GATE`]× faster than the reference on the FP-bus sweep — the
//! PR's headline acceptance criterion. Results are cross-checked for
//! equality while benchmarking, so a speedup obtained by diverging from
//! the reference semantics fails loudly here too.

use std::hint::black_box;
use std::time::Instant;

use cpa_analysis::{
    analyze, analyze_reference, AnalysisConfig, AnalysisContext, AnalysisResult, BusPolicy,
    PersistenceMode,
};
use cpa_experiments::runner::platform_for;
use cpa_telemetry::{BenchRecord, JsonValue};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Fig. 2 sweep's utilization grid, reduced to the span where the
/// analysis does real work (low = trivially schedulable, high = mostly
/// deadline misses; both paths are exercised).
const UTILS: &[f64] = &[0.3, 0.5, 0.7];
/// Task sets per utilization point.
const SETS_PER_UTIL: u64 = 12;
/// Required engine speedup on the FP-bus sweep (the acceptance gate).
const SPEEDUP_GATE: f64 = 2.0;

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let gen_base = GeneratorConfig::paper_default();
    let platform = platform_for(&gen_base);
    let mut task_sets = Vec::new();
    for &util in UTILS {
        let gen = gen_base.clone().with_per_core_utilization(util);
        let generator = TaskSetGenerator::new(gen).expect("generator");
        for seed in 0..SETS_PER_UTIL {
            let mut rng = ChaCha8Rng::seed_from_u64(0x0DA7_E202 ^ seed);
            task_sets.push(generator.generate(&mut rng).expect("task set"));
        }
    }
    let contexts: Vec<AnalysisContext<'_>> = task_sets
        .iter()
        .map(|tasks| AnalysisContext::new(&platform, tasks).expect("context"))
        .collect();

    let [fp, rr, tdma] = BusPolicy::paper_buses(2);
    let policies = [fp, rr, tdma, BusPolicy::Perfect];
    let mut measured: Vec<(&str, f64, f64, f64)> = Vec::new();
    let mut fp_speedup = 0.0f64;
    for bus in policies {
        let config = AnalysisConfig::new(bus, PersistenceMode::Aware);

        // Semantics first: the differential pin, re-checked in situ.
        for ctx in &contexts {
            let engine = analyze(ctx, &config);
            let reference = analyze_reference(ctx, &config);
            assert_eq!(
                (engine.response_times(), engine.is_schedulable()),
                (reference.response_times(), reference.is_schedulable()),
                "{bus:?}: engine diverged from reference"
            );
        }

        let old_ns = time_sweep(&contexts, &config, analyze_reference);
        let engine_ns = time_sweep(&contexts, &config, analyze);
        let speedup = old_ns / engine_ns;
        if bus == fp {
            fp_speedup = speedup;
        }
        eprintln!(
            "{:<8} reference {:>12.0} ns/sweep   engine {:>12.0} ns/sweep   speedup {:.2}x",
            bus.label(),
            old_ns,
            engine_ns,
            speedup
        );
        measured.push((bus.label(), old_ns, engine_ns, speedup));
    }

    let pass = fp_speedup >= SPEEDUP_GATE;
    let mut record = BenchRecord::new("analysis_engine", "fig2_sweep");
    record.push_config(
        "utils",
        JsonValue::Array(UTILS.iter().map(|&u| JsonValue::F64(u)).collect()),
    );
    record.push_config("sets_per_util", SETS_PER_UTIL);
    for (label, old_ns, engine_ns, speedup) in &measured {
        record.push_metric(&format!("{label}_reference_ns"), old_ns.round());
        record.push_metric(&format!("{label}_engine_ns"), engine_ns.round());
        record.push_throughput(&format!("{label}_speedup"), *speedup);
    }
    record.push_gate("fig2_fp_sweep_speedup", fp_speedup, SPEEDUP_GATE, pass);
    // Anchor to the workspace root: `cargo bench` sets the CWD to the
    // crate directory, but the gate artifact belongs next to ci.sh.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    record
        .write_json_file(out)
        .expect("write BENCH_analysis.json");
    record
        .append_history(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_history.jsonl"
        ))
        .expect("append bench history");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!("FAIL: FP sweep speedup {fp_speedup:.2}x below the {SPEEDUP_GATE}x gate");
        std::process::exit(1);
    }
}

/// Median-of-three wall time of one full sweep (all task sets once), in
/// nanoseconds, with one untimed warm-up sweep.
fn time_sweep(
    contexts: &[AnalysisContext<'_>],
    config: &AnalysisConfig,
    f: fn(&AnalysisContext<'_>, &AnalysisConfig) -> AnalysisResult,
) -> f64 {
    let sweep = || {
        for ctx in contexts {
            black_box(f(black_box(ctx), black_box(config)));
        }
    };
    sweep();
    let mut runs = [0.0f64; 3];
    for run in &mut runs {
        let start = Instant::now();
        sweep();
        *run = start.elapsed().as_nanos() as f64;
    }
    runs.sort_by(f64::total_cmp);
    runs[1]
}
