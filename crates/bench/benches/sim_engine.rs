//! Fast-path-vs-reference simulator benchmark: the event-skipping
//! [`Simulator::run`] against the cycle-stepped
//! [`Simulator::run_reference`], on the validation campaign's workload
//! mix (the simulator's hot caller: `cpa-validate` spends most of its
//! time here).
//!
//! Hand-rolled harness (like `analysis_engine`) rather than criterion's,
//! because this bench is also a CI gate: it writes the measured numbers to
//! `BENCH_sim.json` and exits non-zero unless the fast path is at least
//! [`SPEEDUP_GATE`]× faster than the reference on the campaign mix — the
//! PR's headline acceptance criterion. Every benchmarked run is also
//! cross-checked for full-report equality, so a speedup obtained by
//! diverging from the stepped semantics fails loudly here too.

use std::hint::black_box;
use std::time::Instant;

use cpa_model::{Platform, TaskSet};
use cpa_sim::{BusArbitration, ReleaseModel, SimConfig, SimReport, Simulator};
use cpa_telemetry::BenchRecord;
use cpa_validate::oracle::{horizon_for, platform_for_tasks};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Task sets in the campaign mix. Each draws its utilization, task count
/// and cache pressure from the same bands `cpa-validate` samples.
const SETS: u64 = 8;
/// Horizon cap, matching the full campaign profile.
const HORIZON_CAP: u64 = 1_500_000;
/// Required fast-path speedup on the campaign mix (the acceptance gate).
const SPEEDUP_GATE: f64 = 5.0;

struct Case {
    platform: Platform,
    tasks: TaskSet,
    config: SimConfig,
}

fn main() {
    // `cargo bench` passes flags like `--bench`; this harness ignores them.
    let base = GeneratorConfig::paper_default();
    let mut systems = Vec::new();
    for seed in 0..SETS {
        // The campaign's per-set profile: small two-core sets across a
        // band of utilizations (see cpa_validate::campaign::profile_for).
        let mut rng = ChaCha8Rng::seed_from_u64(0x51B3_11C5 ^ seed);
        let utilization = rng.gen_range(0.10..0.55);
        let tasks_per_core = rng.gen_range(3usize..6);
        let config = GeneratorConfig {
            cores: 2,
            tasks_per_core,
            ..base.clone()
        }
        .with_per_core_utilization(utilization);
        let generator = TaskSetGenerator::new(config).expect("generator");
        let tasks = generator.generate(&mut rng).expect("task set");
        let platform = platform_for_tasks(&tasks, base.d_mem).expect("platform");
        systems.push((platform, tasks));
    }

    // The campaign simulates each set per (bus, release model); mirror
    // that matrix here so every arbiter's skip logic is on the clock.
    let matrix: [(&str, BusArbitration, ReleaseModel); 4] = [
        (
            "fp_sync",
            BusArbitration::FixedPriority,
            ReleaseModel::Synchronous,
        ),
        (
            "rr_sync",
            BusArbitration::RoundRobin { slots: 2 },
            ReleaseModel::Synchronous,
        ),
        (
            "tdma_sync",
            BusArbitration::Tdma { slots: 2 },
            ReleaseModel::Synchronous,
        ),
        (
            "fp_sporadic",
            BusArbitration::FixedPriority,
            ReleaseModel::Sporadic {
                seed: 0x5EED,
                max_extra_percent: 40,
            },
        ),
    ];

    let mut measured: Vec<(&str, f64, f64, f64)> = Vec::new();
    let mut mix_reference_ns = 0.0f64;
    let mut mix_engine_ns = 0.0f64;
    for (label, bus, releases) in matrix {
        let cases: Vec<Case> = systems
            .iter()
            .map(|(platform, tasks)| Case {
                platform: platform.clone(),
                tasks: tasks.clone(),
                config: SimConfig::new(bus)
                    .with_horizon(horizon_for(tasks, HORIZON_CAP))
                    .with_releases(releases),
            })
            .collect();

        // Semantics first: the differential pin, re-checked in situ.
        for case in &cases {
            assert_eq!(
                run(case, false),
                run(case, true),
                "{label}: fast path diverged from the reference"
            );
        }

        let reference_ns = time_sweep(&cases, true);
        let engine_ns = time_sweep(&cases, false);
        mix_reference_ns += reference_ns;
        mix_engine_ns += engine_ns;
        let speedup = reference_ns / engine_ns;
        eprintln!(
            "{label:<12} reference {:>12.0} ns/sweep   fast {:>12.0} ns/sweep   speedup {speedup:.2}x",
            reference_ns, engine_ns
        );
        measured.push((label, reference_ns, engine_ns, speedup));
    }

    let speedup = mix_reference_ns / mix_engine_ns;
    let sims = (SETS * matrix.len() as u64) as f64;
    let reference_sims_per_sec = sims / (mix_reference_ns * 1e-9);
    let engine_sims_per_sec = sims / (mix_engine_ns * 1e-9);
    let pass = speedup >= SPEEDUP_GATE;
    eprintln!(
        "campaign mix: reference {reference_sims_per_sec:.1} sims/s -> fast \
         {engine_sims_per_sec:.1} sims/s ({speedup:.2}x)"
    );
    let mut record = BenchRecord::new("sim_engine", "campaign_mix");
    record.push_config("sets", SETS);
    record.push_config("horizon_cap", HORIZON_CAP);
    for (label, reference_ns, engine_ns, config_speedup) in &measured {
        record.push_metric(&format!("{label}_reference_ns"), reference_ns.round());
        record.push_metric(&format!("{label}_engine_ns"), engine_ns.round());
        record.push_throughput(&format!("{label}_speedup"), *config_speedup);
    }
    record.push_metric("reference_sims_per_sec", reference_sims_per_sec);
    record.push_throughput("engine_sims_per_sec", engine_sims_per_sec);
    record.push_throughput("campaign_mix_speedup", speedup);
    record.push_gate("campaign_mix_speedup", speedup, SPEEDUP_GATE, pass);
    // Anchor to the workspace root: `cargo bench` sets the CWD to the
    // crate directory, but the gate artifact belongs next to ci.sh.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    record.write_json_file(out).expect("write BENCH_sim.json");
    record
        .append_history(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/bench_history.jsonl"
        ))
        .expect("append bench history");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!("FAIL: campaign-mix speedup {speedup:.2}x below the {SPEEDUP_GATE}x gate");
        std::process::exit(1);
    }
}

fn run(case: &Case, reference: bool) -> SimReport {
    let sim = Simulator::new(&case.platform, &case.tasks, case.config).expect("fits");
    if reference {
        sim.run_reference()
    } else {
        sim.run()
    }
}

/// Median-of-three wall time of one full sweep (all task sets once), in
/// nanoseconds, with one untimed warm-up sweep.
fn time_sweep(cases: &[Case], reference: bool) -> f64 {
    let sweep = || {
        for case in cases {
            black_box(run(black_box(case), reference));
        }
    };
    sweep();
    let mut runs = [0.0f64; 3];
    for run in &mut runs {
        let start = Instant::now();
        sweep();
        *run = start.elapsed().as_nanos() as f64;
    }
    runs.sort_by(f64::total_cmp);
    runs[1]
}
