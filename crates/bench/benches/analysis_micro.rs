//! Microbenchmarks of the analysis building blocks: context construction
//! (the CRPD/CPRO tables), `BAS`/`BÂS`, `BAO`/`BÂO`, `BAT` and the WCRT
//! fixed point — the cost model behind every figure's runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpa_analysis::bao::{bao, CarryOut, PriorityBand};
use cpa_analysis::{
    analyze, bas, bus, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode,
};
use cpa_experiments::runner::platform_for;
use cpa_model::{CoreId, TaskId, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_analysis(c: &mut Criterion) {
    let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
    let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
    let platform = platform_for(&gen);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(11))
        .expect("task set");

    let mut group = c.benchmark_group("analysis_micro");
    group.sample_size(30);

    group.bench_function("context_build_32_tasks", |b| {
        b.iter(|| {
            black_box(AnalysisContext::new(
                black_box(&platform),
                black_box(&tasks),
            ))
        });
    });

    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let lowest = tasks.lowest_priority_id();
    let window = Time::from_cycles(100_000);
    let resp: Vec<Time> = tasks
        .iter()
        .map(|t| t.processing_demand() + ctx.d_mem() * t.memory_demand())
        .collect();

    group.bench_function("bas_oblivious", |b| {
        b.iter(|| black_box(bas::bas_oblivious(&ctx, lowest, black_box(window))));
    });
    group.bench_function("bas_aware", |b| {
        b.iter(|| black_box(bas::bas_aware(&ctx, lowest, black_box(window))));
    });
    group.bench_function("bao_aware_one_core", |b| {
        b.iter(|| {
            black_box(bao(
                &ctx,
                lowest,
                CoreId::new(1),
                black_box(window),
                &resp,
                PersistenceMode::Aware,
                PriorityBand::HigherOrEqual,
                CarryOut::Exact,
            ))
        });
    });
    for cfg in [
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::Tdma { slots: 2 }, PersistenceMode::Aware),
    ] {
        group.bench_function(format!("bat_{}", cfg.bus.label()), |b| {
            b.iter(|| black_box(bus::bat(&ctx, lowest, black_box(window), &resp, &cfg)));
        });
    }
    group.bench_function("wcrt_full_fp_aware", |b| {
        let cfg = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
        b.iter(|| black_box(analyze(&ctx, &cfg)));
    });
    group.bench_function("gamma_lookup", |b| {
        b.iter(|| black_box(ctx.gamma(black_box(lowest), black_box(TaskId::new(0)))));
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
