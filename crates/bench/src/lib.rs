//! Criterion benchmark host crate — see the `benches/` directory.
//!
//! This crate exists to host the workspace's Criterion benchmark targets
//! (one per table/figure of the paper); it exports no library API.
