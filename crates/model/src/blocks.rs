//! Sets of cache blocks, the currency of CRPD/CPRO analysis.

use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

use serde::{Deserialize, Serialize};

use crate::ModelError;

const WORD_BITS: usize = 64;

/// A set of cache blocks identified by the cache set they map to.
///
/// The paper (and the CRPD literature it builds on) represents a task's cache
/// footprint as sets of cache-set indices: *evicting cache blocks* (`ECB_i`),
/// *useful cache blocks* (`UCB_i`) and *persistent cache blocks* (`PCB_i`).
/// With a direct-mapped cache, two blocks conflict iff they map to the same
/// set, so set indices are the right granularity for all the intersection
/// and union algebra of Eq. (2) and Eq. (14).
///
/// The representation is a fixed-capacity bitset whose capacity equals the
/// number of cache sets of the platform, so intersections (`γ`, CPRO) are
/// word-parallel.
///
/// # Example
///
/// ```
/// use cpa_model::CacheBlockSet;
///
/// # fn main() -> Result<(), cpa_model::ModelError> {
/// let pcb1 = CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?;
/// let ecb2 = CacheBlockSet::from_blocks(256, 1..=6)?;
/// // The Fig. 1 overlap that causes CPRO: PCBs {5, 6} of τ1 evicted by τ2.
/// assert_eq!(pcb1.intersection_len(&ecb2), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheBlockSet {
    capacity: usize,
    words: Vec<u64>,
}

impl CacheBlockSet {
    /// Creates an empty set over `capacity` cache sets.
    ///
    /// ```
    /// use cpa_model::CacheBlockSet;
    /// let s = CacheBlockSet::new(128);
    /// assert!(s.is_empty());
    /// assert_eq!(s.capacity(), 128);
    /// ```
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CacheBlockSet {
            capacity,
            words: vec![0; capacity.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set over `capacity` cache sets containing `blocks`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BlockOutOfRange`] if any block index is
    /// `>= capacity`.
    pub fn from_blocks<I>(capacity: usize, blocks: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = usize>,
    {
        let mut set = CacheBlockSet::new(capacity);
        for block in blocks {
            set.insert(block)?;
        }
        Ok(set)
    }

    /// Creates the contiguous set `[start, start + len)` with indices wrapped
    /// modulo `capacity`.
    ///
    /// This is the canonical layout for synthetic workloads in the CRPD
    /// evaluation literature: a task occupies a run of consecutive cache sets
    /// starting at some offset. When `len >= capacity` the whole cache is
    /// covered.
    ///
    /// ```
    /// use cpa_model::CacheBlockSet;
    /// let s = CacheBlockSet::contiguous(8, 6, 4);
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 6, 7]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero and `len > 0`.
    #[must_use]
    pub fn contiguous(capacity: usize, start: usize, len: usize) -> Self {
        let mut set = CacheBlockSet::new(capacity);
        if len == 0 {
            return set;
        }
        assert!(capacity > 0, "contiguous blocks require non-zero capacity");
        // The wrapped range [start, start + len) mod capacity is at most
        // two linear runs; fill them word-wise instead of bit by bit
        // (task generation builds three of these per task).
        let len = len.min(capacity);
        let start = start % capacity;
        let first = (capacity - start).min(len);
        set.fill_range(start, start + first);
        set.fill_range(0, len - first);
        set
    }

    /// Sets every bit in `[lo, hi)` (callers keep `hi <= capacity`).
    fn fill_range(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let wl = lo / WORD_BITS;
        let wh = (hi - 1) / WORD_BITS;
        let mask_lo = !0u64 << (lo % WORD_BITS);
        let mask_hi = !0u64 >> (WORD_BITS - 1 - (hi - 1) % WORD_BITS);
        if wl == wh {
            self.words[wl] |= mask_lo & mask_hi;
        } else {
            self.words[wl] |= mask_lo;
            for word in &mut self.words[wl + 1..wh] {
                *word = !0;
            }
            self.words[wh] |= mask_hi;
        }
    }

    /// Number of cache sets this set ranges over.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks in the set (the `|·|` of Eq. (2) and (14)).
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if `block` is in the set.
    #[must_use]
    pub fn contains(&self, block: usize) -> bool {
        block < self.capacity && self.words[block / WORD_BITS] & (1 << (block % WORD_BITS)) != 0
    }

    /// Inserts `block`; returns `true` if it was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BlockOutOfRange`] if `block >= capacity`.
    pub fn insert(&mut self, block: usize) -> Result<bool, ModelError> {
        if block >= self.capacity {
            return Err(ModelError::BlockOutOfRange {
                block,
                capacity: self.capacity,
            });
        }
        let present = self.contains(block);
        self.set_bit(block);
        Ok(!present)
    }

    /// Removes `block`; returns `true` if it was present.
    pub fn remove(&mut self, block: usize) -> bool {
        if !self.contains(block) {
            return false;
        }
        self.words[block / WORD_BITS] &= !(1 << (block % WORD_BITS));
        true
    }

    fn set_bit(&mut self, block: usize) {
        self.words[block / WORD_BITS] |= 1 << (block % WORD_BITS);
    }

    /// Empties the set in place, keeping its capacity and allocation.
    /// The reset primitive for scratch sets reused across many union
    /// folds (the per-`j` evictor unions of the analysis-context fill).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the contained block indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..WORD_BITS)
                .filter(move |bit| word & (1 << bit) != 0)
                .map(move |bit| wi * WORD_BITS + bit)
        })
    }

    /// Set union `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ; block sets are only comparable within
    /// one cache geometry.
    #[must_use]
    pub fn union(&self, other: &CacheBlockSet) -> CacheBlockSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        CacheBlockSet {
            capacity: self.capacity,
            words,
        }
    }

    /// In-place set union; avoids an allocation when folding many sets
    /// (the `∪_{h ∈ hep(j)} ECB_h` of Eq. (2)).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_in_place(&mut self, other: &CacheBlockSet) {
        self.assert_same_capacity(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set intersection `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn intersection(&self, other: &CacheBlockSet) -> CacheBlockSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        CacheBlockSet {
            capacity: self.capacity,
            words,
        }
    }

    /// Size of the intersection without materialising it — the hot path of
    /// CRPD (Eq. (2)) and CPRO (Eq. (14)) computations.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn intersection_len(&self, other: &CacheBlockSet) -> usize {
        self.assert_same_capacity(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn difference(&self, other: &CacheBlockSet) -> CacheBlockSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        CacheBlockSet {
            capacity: self.capacity,
            words,
        }
    }

    /// Returns `true` if every block of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_subset(&self, other: &CacheBlockSet) -> bool {
        self.assert_same_capacity(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no block.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &CacheBlockSet) -> bool {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Folds the union of many sets over `capacity` cache sets.
    ///
    /// ```
    /// use cpa_model::CacheBlockSet;
    /// # fn main() -> Result<(), cpa_model::ModelError> {
    /// let a = CacheBlockSet::from_blocks(16, [1, 2])?;
    /// let b = CacheBlockSet::from_blocks(16, [2, 3])?;
    /// let u = CacheBlockSet::union_of(16, [&a, &b]);
    /// assert_eq!(u.len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any set has a different capacity.
    #[must_use]
    pub fn union_of<'a, I>(capacity: usize, sets: I) -> CacheBlockSet
    where
        I: IntoIterator<Item = &'a CacheBlockSet>,
    {
        let mut acc = CacheBlockSet::new(capacity);
        for set in sets {
            acc.union_in_place(set);
        }
        acc
    }

    /// Re-maps every block into a cache with `new_capacity` sets by taking
    /// the block index modulo `new_capacity`, the direct-mapped placement
    /// function. Used by the cache-size sweep (Fig. 3c) to project benchmark
    /// footprints extracted for one geometry onto another.
    ///
    /// ```
    /// use cpa_model::CacheBlockSet;
    /// # fn main() -> Result<(), cpa_model::ModelError> {
    /// let s = CacheBlockSet::from_blocks(256, [0, 32, 64])?;
    /// let small = s.remap(32);
    /// assert_eq!(small.iter().collect::<Vec<_>>(), vec![0]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` is zero.
    #[must_use]
    pub fn remap(&self, new_capacity: usize) -> CacheBlockSet {
        assert!(new_capacity > 0, "cannot remap into an empty cache");
        let mut out = CacheBlockSet::new(new_capacity);
        for block in self.iter() {
            out.set_bit(block % new_capacity);
        }
        out
    }

    /// Rotates every block by `shift` cache sets, wrapping modulo the
    /// capacity — the cache-coloring move of `cpa-optimize`. Shifting a
    /// task's whole footprint (`ECB`, `UCB`, `PCB` by the same amount)
    /// relocates it in the cache without changing its size or internal
    /// subset structure, so recoloring never invalidates task invariants;
    /// only the *inter-task* overlaps (`γ`, CPRO) change.
    ///
    /// ```
    /// use cpa_model::CacheBlockSet;
    /// let s = CacheBlockSet::contiguous(8, 6, 3);
    /// assert_eq!(s.rotated(2).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    /// assert_eq!(s.rotated(0), s);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the set is non-empty with zero capacity (unreachable for
    /// constructed sets).
    #[must_use]
    pub fn rotated(&self, shift: usize) -> CacheBlockSet {
        let mut out = CacheBlockSet::new(self.capacity);
        if self.capacity == 0 {
            assert!(self.is_empty(), "non-empty set with zero capacity");
            return out;
        }
        let shift = shift % self.capacity;
        for block in self.iter() {
            out.set_bit((block + shift) % self.capacity);
        }
        out
    }

    /// Feeds the set's canonical encoding into a
    /// [`crate::ContentHasher`]: the capacity plus the raw bitset words.
    /// The words *are* canonical — every mutation keeps bits beyond
    /// `capacity` zero and the word count is a function of the
    /// capacity — and hashing them directly costs one write per 64
    /// blocks instead of one per set block (fingerprinting task sets
    /// sits on the analysis hot path).
    pub fn hash_content(&self, hasher: &mut crate::ContentHasher) {
        hasher.write_usize(self.capacity);
        for &word in &self.words {
            hasher.write_u64(word);
        }
    }

    fn assert_same_capacity(&self, other: &CacheBlockSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "cache block sets have different capacities ({} vs {})",
            self.capacity, other.capacity
        );
    }
}

impl BitOr for &CacheBlockSet {
    type Output = CacheBlockSet;

    fn bitor(self, rhs: &CacheBlockSet) -> CacheBlockSet {
        self.union(rhs)
    }
}

impl BitAnd for &CacheBlockSet {
    type Output = CacheBlockSet;

    fn bitand(self, rhs: &CacheBlockSet) -> CacheBlockSet {
        self.intersection(rhs)
    }
}

impl Sub for &CacheBlockSet {
    type Output = CacheBlockSet;

    fn sub(self, rhs: &CacheBlockSet) -> CacheBlockSet {
        self.difference(rhs)
    }
}

impl fmt::Debug for CacheBlockSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheBlockSet(cap={}, ", self.capacity)?;
        f.debug_set().entries(self.iter()).finish()?;
        write!(f, ")")
    }
}

impl fmt::Display for CacheBlockSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for CacheBlockSet {
    /// Extends the set, **silently ignoring** out-of-range blocks is not an
    /// option we take: out-of-range blocks panic. Use [`CacheBlockSet::insert`]
    /// for fallible insertion.
    ///
    /// # Panics
    ///
    /// Panics if any block is `>= capacity`.
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for block in iter {
            self.insert(block).expect("block out of range in extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(blocks: impl IntoIterator<Item = usize>) -> CacheBlockSet {
        CacheBlockSet::from_blocks(256, blocks).unwrap()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = CacheBlockSet::new(100);
        assert!(s.insert(5).unwrap());
        assert!(!s.insert(5).unwrap());
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = CacheBlockSet::new(8);
        assert!(matches!(
            s.insert(8),
            Err(ModelError::BlockOutOfRange {
                block: 8,
                capacity: 8
            })
        ));
        assert!(!s.contains(10_000));
    }

    #[test]
    fn fig1_overlap() {
        // τ1's PCBs and τ2's ECBs overlap on {5, 6} — the source of CPRO in
        // the paper's running example.
        let pcb1 = set([5, 6, 7, 8, 10]);
        let ecb2 = set(1..=6);
        assert_eq!(pcb1.intersection_len(&ecb2), 2);
        let inter = pcb1.intersection(&ecb2);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![5, 6]);
    }

    #[test]
    fn algebra_against_reference() {
        let a = set([1, 3, 5, 64, 65, 200]);
        let b = set([3, 4, 64, 199, 200]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![1, 3, 4, 5, 64, 65, 199, 200]
        );
        assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            vec![3, 64, 200]
        );
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 5, 65]);
        assert_eq!((&a | &b).len(), 8);
        assert_eq!((&a & &b).len(), 3);
        assert_eq!((&a - &b).len(), 3);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set([1, 2]);
        let b = set([1, 2, 3]);
        let c = set([7, 8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(CacheBlockSet::new(256).is_subset(&a));
    }

    #[test]
    fn contiguous_wraps() {
        let s = CacheBlockSet::contiguous(8, 6, 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 6, 7]);
        let full = CacheBlockSet::contiguous(8, 3, 100);
        assert_eq!(full.len(), 8);
        let empty = CacheBlockSet::contiguous(8, 2, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn union_of_many() {
        let sets = [set([1]), set([2]), set([2, 3])];
        let u = CacheBlockSet::union_of(256, &sets);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(CacheBlockSet::union_of(256, []).is_empty());
    }

    #[test]
    fn rotation_wraps_and_preserves_structure() {
        let s = CacheBlockSet::contiguous(8, 6, 3);
        assert_eq!(s.rotated(2).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(s.rotated(0), s);
        assert_eq!(s.rotated(8), s, "full-capacity rotation is the identity");
        assert_eq!(s.rotated(10), s.rotated(2), "shift wraps modulo capacity");
        // Rotating a subset pair by the same shift preserves the relation.
        let ecb = set([1, 2, 3, 200]);
        let pcb = set([2, 200]);
        assert!(pcb.rotated(77).is_subset(&ecb.rotated(77)));
        assert_eq!(
            pcb.rotated(77).intersection_len(&ecb.rotated(77)),
            pcb.intersection_len(&ecb)
        );
        assert!(CacheBlockSet::new(0).rotated(3).is_empty());
    }

    #[test]
    fn remap_mod_placement() {
        let s = set([0, 32, 64, 100]);
        let r = s.remap(32);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(r.capacity(), 32);
        // Identity when capacity unchanged.
        assert_eq!(s.remap(256), s);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn mixed_capacity_panics() {
        let a = CacheBlockSet::new(8);
        let b = CacheBlockSet::new(16);
        let _ = a.union(&b);
    }

    #[test]
    fn debug_and_display_nonempty() {
        let s = set([1, 2]);
        assert!(format!("{s:?}").contains("cap=256"));
        assert_eq!(s.to_string(), "{1, 2}");
    }

    #[test]
    fn serde_round_trip() {
        let s = set([0, 63, 64, 255]);
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheBlockSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = set([1, 200]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 256);
        assert!(s.insert(255).unwrap());
    }

    proptest! {
        #[test]
        fn contiguous_matches_bit_by_bit_reference(
            capacity in 1usize..300,
            start in 0usize..600,
            len in 0usize..600,
        ) {
            let fast = CacheBlockSet::contiguous(capacity, start, len);
            let mut reference = CacheBlockSet::new(capacity);
            for offset in 0..len.min(capacity) {
                reference.set_bit((start + offset) % capacity);
            }
            prop_assert_eq!(fast, reference);
        }

        #[test]
        fn union_len_inclusion_exclusion(
            a in proptest::collection::hash_set(0usize..256, 0..64),
            b in proptest::collection::hash_set(0usize..256, 0..64),
        ) {
            let sa = set(a.iter().copied());
            let sb = set(b.iter().copied());
            prop_assert_eq!(
                sa.union(&sb).len() + sa.intersection_len(&sb),
                sa.len() + sb.len()
            );
        }

        #[test]
        fn intersection_is_subset_of_both(
            a in proptest::collection::hash_set(0usize..256, 0..64),
            b in proptest::collection::hash_set(0usize..256, 0..64),
        ) {
            let sa = set(a.iter().copied());
            let sb = set(b.iter().copied());
            let i = sa.intersection(&sb);
            prop_assert!(i.is_subset(&sa));
            prop_assert!(i.is_subset(&sb));
            prop_assert_eq!(i.len(), sa.intersection_len(&sb));
        }

        #[test]
        fn iter_sorted_and_consistent(
            a in proptest::collection::hash_set(0usize..256, 0..64),
        ) {
            let sa = set(a.iter().copied());
            let items: Vec<usize> = sa.iter().collect();
            let mut sorted = items.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&items, &sorted);
            prop_assert_eq!(items.len(), sa.len());
            for x in items {
                prop_assert!(sa.contains(x));
            }
        }

        #[test]
        fn remap_preserves_membership_mod(
            a in proptest::collection::hash_set(0usize..256, 0..64),
            cap in 1usize..512,
        ) {
            let sa = set(a.iter().copied());
            let r = sa.remap(cap);
            for x in a {
                prop_assert!(r.contains(x % cap));
            }
            prop_assert!(r.len() <= sa.len());
        }
    }
}
