//! Typed identifiers: tasks, cores, priorities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a task within a [`TaskSet`](crate::TaskSet).
///
/// Task ids are dense indices assigned by [`TaskSet::new`](crate::TaskSet::new)
/// in priority order, so `TaskId::new(0)` is always the highest-priority task
/// (the paper's `τ1`).
///
/// ```
/// use cpa_model::TaskId;
/// let id = TaskId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task id from a dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// Returns the dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0 + 1)
    }
}

/// Index of a processor core (`π_x` in the paper), zero-based.
///
/// ```
/// use cpa_model::CoreId;
/// assert_eq!(CoreId::new(2).index(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core id from a zero-based index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{}", self.0 + 1)
    }
}

/// A unique, global, fixed task priority. **Lower numeric value means higher
/// priority**, following the paper's convention that `τ1` has the highest
/// priority and `τn` the lowest.
///
/// ```
/// use cpa_model::Priority;
/// let high = Priority::new(1);
/// let low = Priority::new(9);
/// assert!(high.is_higher_than(low));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Priority(u32);

impl Priority {
    /// Creates a priority level; lower values are higher priority.
    #[must_use]
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// Returns the numeric priority level.
    #[must_use]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Returns `true` if `self` is a strictly higher priority than `other`
    /// (i.e. a numerically smaller level).
    #[must_use]
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TaskId::new(0).to_string(), "τ1");
        assert_eq!(CoreId::new(0).to_string(), "π1");
        assert_eq!(Priority::new(4).to_string(), "P4");
    }

    #[test]
    fn priority_ordering_convention() {
        let p1 = Priority::new(1);
        let p2 = Priority::new(2);
        assert!(p1.is_higher_than(p2));
        assert!(!p2.is_higher_than(p1));
        assert!(!p1.is_higher_than(p1));
        // Ord follows the numeric level, not the "higher priority" relation.
        assert!(p1 < p2);
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(TaskId::new(7).index(), 7);
        assert_eq!(CoreId::new(7).index(), 7);
        assert_eq!(Priority::new(7).level(), 7);
    }
}
