//! The multicore platform: cores, private caches, shared memory bus.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, Time};

/// Geometry of a private instruction cache.
///
/// The paper's platform uses direct-mapped LRU instruction caches; the model
/// also carries an associativity so the cache-analysis substrate can handle
/// set-associative LRU caches.
///
/// ```
/// use cpa_model::CacheGeometry;
/// let g = CacheGeometry::direct_mapped(256, 32);
/// assert_eq!(g.sets(), 256);
/// assert_eq!(g.size_bytes(), 256 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    sets: usize,
    block_size: usize,
    associativity: usize,
}

impl CacheGeometry {
    /// A direct-mapped cache with `sets` cache sets of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `block_size` is zero.
    #[must_use]
    pub fn direct_mapped(sets: usize, block_size: usize) -> Self {
        Self::set_associative(sets, block_size, 1)
    }

    /// A set-associative LRU cache.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn set_associative(sets: usize, block_size: usize, associativity: usize) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        assert!(block_size > 0, "cache blocks must be at least one byte");
        assert!(associativity > 0, "cache must have at least one way");
        CacheGeometry {
            sets,
            block_size,
            associativity,
        }
    }

    /// Number of cache sets.
    #[must_use]
    pub const fn sets(&self) -> usize {
        self.sets
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub const fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of ways per set (1 = direct-mapped).
    #[must_use]
    pub const fn associativity(&self) -> usize {
        self.associativity
    }

    /// Total cache size in bytes.
    #[must_use]
    pub const fn size_bytes(&self) -> usize {
        self.sets * self.block_size * self.associativity
    }

    /// Maps a byte address to the cache set its block belongs to.
    ///
    /// ```
    /// use cpa_model::CacheGeometry;
    /// let g = CacheGeometry::direct_mapped(256, 32);
    /// assert_eq!(g.set_of_address(0), 0);
    /// assert_eq!(g.set_of_address(32), 1);
    /// assert_eq!(g.set_of_address(256 * 32), 0); // wraps
    /// ```
    #[must_use]
    pub const fn set_of_address(&self, address: u64) -> usize {
        (address as usize / self.block_size) % self.sets
    }

    /// Maps a byte address to its memory-block number (address / block size),
    /// the tag-granularity identity of a cached block.
    #[must_use]
    pub const fn block_of_address(&self, address: u64) -> u64 {
        address / self.block_size as u64
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets × {} way(s) × {} B",
            self.sets, self.associativity, self.block_size
        )
    }
}

/// A multicore platform: `m` identical timing-compositional cores, each with
/// a private instruction cache, connected to main memory by a shared bus
/// whose worst-case per-access latency is `d_mem` (§II).
///
/// # Example
///
/// ```
/// use cpa_model::{CacheGeometry, Platform, Time};
///
/// # fn main() -> Result<(), cpa_model::ModelError> {
/// // The paper's default evaluation platform: 4 cores, 256-set caches with
/// // 32-byte lines, d_mem = 5 µs ≙ 5000 cycles at 1 GHz.
/// let platform = Platform::builder()
///     .cores(4)
///     .cache(CacheGeometry::direct_mapped(256, 32))
///     .memory_latency(Time::from_cycles(5_000))
///     .build()?;
/// assert_eq!(platform.cores(), 4);
/// assert_eq!(platform.memory_latency().cycles(), 5_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Platform {
    cores: usize,
    cache: CacheGeometry,
    d_mem: Time,
}

impl Platform {
    /// Starts building a platform.
    #[must_use]
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// Number of cores `m`.
    #[must_use]
    pub const fn cores(&self) -> usize {
        self.cores
    }

    /// Geometry of each core's private instruction cache.
    #[must_use]
    pub const fn cache(&self) -> CacheGeometry {
        self.cache
    }

    /// `d_mem`: worst-case time for one access to main memory.
    #[must_use]
    pub const fn memory_latency(&self) -> Time {
        self.d_mem
    }

    /// Returns a copy of this platform with a different core count
    /// (the Fig. 3a sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlatform`] if `cores` is zero.
    pub fn with_cores(&self, cores: usize) -> Result<Platform, ModelError> {
        PlatformBuilder::from(self.clone()).cores(cores).build()
    }

    /// Returns a copy with a different memory latency (the Fig. 3b sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlatform`] if `d_mem` is zero.
    pub fn with_memory_latency(&self, d_mem: Time) -> Result<Platform, ModelError> {
        PlatformBuilder::from(self.clone())
            .memory_latency(d_mem)
            .build()
    }

    /// Returns a copy with a different cache geometry (the Fig. 3c sweep).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for uniformity with the other
    /// `with_` constructors.
    pub fn with_cache(&self, cache: CacheGeometry) -> Result<Platform, ModelError> {
        PlatformBuilder::from(self.clone()).cache(cache).build()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores, L1I {}, d_mem = {}",
            self.cores, self.cache, self.d_mem
        )
    }
}

/// Builder for [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    cores: usize,
    cache: CacheGeometry,
    d_mem: Time,
}

impl Default for PlatformBuilder {
    /// Defaults to the paper's evaluation platform: 4 cores, direct-mapped
    /// 256-set caches with 32-byte blocks, `d_mem` = 5000 cycles (5 µs at
    /// 1 GHz).
    fn default() -> Self {
        PlatformBuilder {
            cores: 4,
            cache: CacheGeometry::direct_mapped(256, 32),
            d_mem: Time::from_cycles(5_000),
        }
    }
}

impl From<Platform> for PlatformBuilder {
    fn from(p: Platform) -> Self {
        PlatformBuilder {
            cores: p.cores,
            cache: p.cache,
            d_mem: p.d_mem,
        }
    }
}

impl PlatformBuilder {
    /// Sets the number of cores.
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the private cache geometry.
    #[must_use]
    pub fn cache(mut self, cache: CacheGeometry) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the worst-case main-memory access latency `d_mem`.
    #[must_use]
    pub fn memory_latency(mut self, d_mem: Time) -> Self {
        self.d_mem = d_mem;
        self
    }

    /// Builds the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPlatform`] if the platform has zero
    /// cores or a zero memory latency.
    pub fn build(self) -> Result<Platform, ModelError> {
        if self.cores == 0 {
            return Err(ModelError::InvalidPlatform {
                reason: "platform must have at least one core".into(),
            });
        }
        if self.d_mem.is_zero() {
            return Err(ModelError::InvalidPlatform {
                reason: "memory latency d_mem must be positive".into(),
            });
        }
        Ok(Platform {
            cores: self.cores,
            cache: self.cache,
            d_mem: self.d_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let g = CacheGeometry::direct_mapped(256, 32);
        assert_eq!(g.sets(), 256);
        assert_eq!(g.block_size(), 32);
        assert_eq!(g.associativity(), 1);
        assert_eq!(g.size_bytes(), 8192);
        let a = CacheGeometry::set_associative(64, 32, 4);
        assert_eq!(a.size_bytes(), 8192);
        assert_eq!(a.to_string(), "64 sets × 4 way(s) × 32 B");
    }

    #[test]
    fn address_mapping() {
        let g = CacheGeometry::direct_mapped(4, 16);
        assert_eq!(g.set_of_address(0), 0);
        assert_eq!(g.set_of_address(15), 0);
        assert_eq!(g.set_of_address(16), 1);
        assert_eq!(g.set_of_address(64), 0);
        assert_eq!(g.block_of_address(0), 0);
        assert_eq!(g.block_of_address(47), 2);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = CacheGeometry::direct_mapped(0, 32);
    }

    #[test]
    fn default_platform_matches_paper() {
        let p = Platform::builder().build().unwrap();
        assert_eq!(p.cores(), 4);
        assert_eq!(p.cache().sets(), 256);
        assert_eq!(p.cache().block_size(), 32);
        assert_eq!(p.memory_latency(), Time::from_cycles(5_000));
        assert!(p.to_string().contains("4 cores"));
    }

    #[test]
    fn builder_validation() {
        assert!(Platform::builder().cores(0).build().is_err());
        assert!(Platform::builder()
            .memory_latency(Time::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn with_variants() {
        let p = Platform::builder().build().unwrap();
        assert_eq!(p.with_cores(8).unwrap().cores(), 8);
        assert!(p.with_cores(0).is_err());
        assert_eq!(
            p.with_memory_latency(Time::from_cycles(2_000))
                .unwrap()
                .memory_latency()
                .cycles(),
            2_000
        );
        let g = CacheGeometry::direct_mapped(1024, 32);
        assert_eq!(p.with_cache(g).unwrap().cache().sets(), 1024);
        // The original is untouched.
        assert_eq!(p.cores(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::builder().cores(6).build().unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
