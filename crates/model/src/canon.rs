//! Canonical content hashing for model values.
//!
//! The optimizer service (`cpa-optimize`) keys its content-addressed
//! result cache on a hash of the *semantic* content of a [`TaskSet`]:
//! two requests that describe the same set of tasks must map to the same
//! cache entry even when the JSON encodings differ in task order or were
//! produced by different serialization round trips. Rather than hashing
//! JSON bytes (which would bake incidental formatting into the key), the
//! hash is computed over a canonical byte encoding of the model values
//! themselves:
//!
//! * tasks are visited in priority order — the one canonical order
//!   [`TaskSet::new`](crate::TaskSet::new) establishes regardless of
//!   insertion or serialization order;
//! * every scalar is written as a fixed-width little-endian word;
//! * variable-length data (names, block sets) is length-prefixed, so
//!   field boundaries cannot alias (`("ab", "c")` vs `("a", "bc")`).
//!
//! The hash itself is 64-bit FNV-1a: dependency-free, deterministic
//! across platforms and runs (unlike `std`'s `DefaultHasher`, whose seed
//! and algorithm are explicitly unstable), and cheap enough to hash a
//! thousand-task set in microseconds. It is a *content* hash for cache
//! addressing, not a cryptographic commitment.

/// Incremental 64-bit FNV-1a hasher over a canonical byte encoding.
///
/// ```
/// use cpa_model::ContentHasher;
///
/// let mut h = ContentHasher::new();
/// h.write_u64(3);
/// h.write_str("fdct");
/// let a = h.finish();
/// let mut h2 = ContentHasher::new();
/// h2.write_u64(3);
/// h2.write_str("fdct");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ContentHasher {
    /// Starts a fresh hash at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes. Callers are responsible for framing; prefer the
    /// typed writers, which length-prefix variable-length data.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds one `usize` widened to `u64` (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a string, length-prefixed so adjacent fields cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value. The hasher stays usable afterwards.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — the published test vector.
        let mut h = ContentHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Empty input hashes to the offset basis.
        assert_eq!(ContentHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut a = ContentHasher::new();
        a.write_bytes(b"hello ");
        a.write_bytes(b"world");
        let mut b = ContentHasher::new();
        b.write_bytes(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}
