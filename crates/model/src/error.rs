//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A cache block index does not fit the cache geometry.
    BlockOutOfRange {
        /// The offending block index.
        block: usize,
        /// The number of cache sets.
        capacity: usize,
    },
    /// A required task field was not supplied to the builder.
    MissingField {
        /// Name of the missing builder field.
        field: &'static str,
    },
    /// A task field has an invalid value (zero period, `MD^r > MD`, ...).
    InvalidTask {
        /// Task name.
        task: String,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The task set violates a global invariant (duplicate priorities,
    /// inconsistent block-set capacities, empty set).
    InvalidTaskSet {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The platform description is invalid (zero cores, zero cache sets...).
    InvalidPlatform {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A task references a core outside the platform.
    CoreOutOfRange {
        /// Task name.
        task: String,
        /// The referenced core index.
        core: usize,
        /// Number of cores in the platform.
        cores: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BlockOutOfRange { block, capacity } => {
                write!(
                    f,
                    "cache block {block} out of range for {capacity} cache sets"
                )
            }
            ModelError::MissingField { field } => {
                write!(f, "task builder is missing required field `{field}`")
            }
            ModelError::InvalidTask { task, reason } => {
                write!(f, "invalid task `{task}`: {reason}")
            }
            ModelError::InvalidTaskSet { reason } => write!(f, "invalid task set: {reason}"),
            ModelError::InvalidPlatform { reason } => write!(f, "invalid platform: {reason}"),
            ModelError::CoreOutOfRange { task, core, cores } => {
                write!(
                    f,
                    "task `{task}` assigned to core {core} but platform has {cores} cores"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::BlockOutOfRange {
            block: 9,
            capacity: 8,
        };
        assert_eq!(e.to_string(), "cache block 9 out of range for 8 cache sets");
        let e = ModelError::MissingField { field: "period" };
        assert!(e.to_string().contains("period"));
        let e = ModelError::InvalidTask {
            task: "t".into(),
            reason: "zero period".into(),
        };
        assert!(e.to_string().contains("zero period"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_error<E: Error + Send + Sync + 'static>() {}
        assert_good_error::<ModelError>();
    }
}
