//! Discrete time measured in processor clock cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A non-negative duration or instant, measured in processor clock cycles.
///
/// All quantities in the analysis — worst-case execution times (`PD_i`),
/// periods, deadlines, response times and the memory access latency `d_mem` —
/// share this single discrete timebase, matching the paper's evaluation where
/// benchmark parameters are given in clock cycles and `d_mem` (default 5 µs)
/// is converted to cycles.
///
/// Arithmetic uses plain operators for the common, obviously-in-range cases
/// and dedicated methods ([`Time::saturating_sub`], [`Time::checked_mul`])
/// where analysis equations can transiently underflow or overflow (e.g. the
/// numerator of Eq. (6), which is negative for small window lengths).
///
/// # Example
///
/// ```
/// use cpa_model::Time;
///
/// let period = Time::from_cycles(250);
/// let window = Time::from_cycles(1_000);
/// assert_eq!(window.div_ceil(period), 4);
/// assert_eq!((period * 3).cycles(), 750);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0);

    /// The largest representable time; used as an "unschedulable" sentinel
    /// by fixed-point iterations that diverge.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a cycle count.
    ///
    /// ```
    /// use cpa_model::Time;
    /// assert_eq!(Time::from_cycles(42).cycles(), 42);
    /// ```
    #[must_use]
    pub const fn from_cycles(cycles: u64) -> Self {
        Time(cycles)
    }

    /// Returns the cycle count.
    #[must_use]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    ///
    /// Several terms of the analysis (e.g. `t + R_l - (MD_l + γ)·d_mem` in
    /// Eq. (5)/(6) of the paper) are negative for small `t`; their clamped
    /// value is always what the surrounding equation needs.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamping at [`Time::MAX`].
    #[must_use]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar count, clamping at [`Time::MAX`].
    #[must_use]
    pub const fn saturating_mul(self, count: u64) -> Time {
        Time(self.0.saturating_mul(count))
    }

    /// Checked subtraction; `None` on underflow.
    #[must_use]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar count; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, count: u64) -> Option<Time> {
        match self.0.checked_mul(count) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Ceiling division by another duration: `⌈self / divisor⌉`.
    ///
    /// This is the request-bound shape `⌈t / T_j⌉` ubiquitous in
    /// response-time analysis (Eq. (1), Lemma 1).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub const fn div_ceil(self, divisor: Time) -> u64 {
        assert!(divisor.0 != 0, "division of Time by zero duration");
        self.0.div_ceil(divisor.0)
    }

    /// Floor division by another duration: `⌊self / divisor⌋` (Eq. (6)).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub const fn div_floor(self, divisor: Time) -> u64 {
        assert!(divisor.0 != 0, "division of Time by zero duration");
        self.0 / divisor.0
    }

    /// Returns the larger of two times.
    #[must_use]
    pub const fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub const fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_add(rhs.0)
                .expect("Time addition overflowed u64 cycles"),
        )
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    /// # Panics
    ///
    /// Panics on underflow; use [`Time::saturating_sub`] where a clamped
    /// result is intended.
    fn sub(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("Time subtraction underflowed; use saturating_sub"),
        )
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;

    fn mul(self, rhs: u64) -> Time {
        Time(
            self.0
                .checked_mul(rhs)
                .expect("Time multiplication overflowed u64 cycles"),
        )
    }
}

impl Mul<Time> for u64 {
    type Output = Time;

    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Time {
    fn from(cycles: u64) -> Self {
        Time(cycles)
    }
}

impl From<Time> for u64 {
    fn from(time: Time) -> Self {
        time.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_cycles(7).cycles(), 7);
        assert_eq!(u64::from(Time::from(9u64)), 9);
        assert_eq!(Time::default(), Time::ZERO);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_cycles(1).is_zero());
    }

    #[test]
    fn basic_arithmetic() {
        let a = Time::from_cycles(10);
        let b = Time::from_cycles(4);
        assert_eq!(a + b, Time::from_cycles(14));
        assert_eq!(a - b, Time::from_cycles(6));
        assert_eq!(a * 3, Time::from_cycles(30));
        assert_eq!(3 * a, Time::from_cycles(30));
        let mut c = a;
        c += b;
        c -= Time::from_cycles(2);
        assert_eq!(c, Time::from_cycles(12));
    }

    #[test]
    fn saturating_and_checked() {
        let a = Time::from_cycles(3);
        let b = Time::from_cycles(5);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::from_cycles(2));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Time::from_cycles(2)));
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(a.checked_mul(2), Some(Time::from_cycles(6)));
    }

    #[test]
    fn division_shapes() {
        let t = Time::from_cycles(10);
        let p = Time::from_cycles(4);
        assert_eq!(t.div_ceil(p), 3);
        assert_eq!(t.div_floor(p), 2);
        assert_eq!(Time::ZERO.div_ceil(p), 0);
        assert_eq!(Time::from_cycles(8).div_ceil(p), 2);
    }

    #[test]
    #[should_panic(expected = "division of Time by zero")]
    fn div_ceil_by_zero_panics() {
        let _ = Time::from_cycles(1).div_ceil(Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = Time::from_cycles(1) - Time::from_cycles(2);
    }

    #[test]
    fn min_max_sum_display() {
        let a = Time::from_cycles(3);
        let b = Time::from_cycles(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Time = [a, b, Time::from_cycles(2)].into_iter().sum();
        assert_eq!(total, Time::from_cycles(10));
        assert_eq!(a.to_string(), "3cy");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let t = Time::from_cycles(123);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "123");
        let back: Time = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    proptest! {
        #[test]
        fn div_ceil_matches_definition(t in 0u64..1_000_000, p in 1u64..10_000) {
            let q = Time::from_cycles(t).div_ceil(Time::from_cycles(p));
            prop_assert!(q * p >= t);
            prop_assert!(q.saturating_sub(1) * p < t || q == 0);
        }

        #[test]
        fn floor_le_ceil(t in 0u64..1_000_000, p in 1u64..10_000) {
            let t = Time::from_cycles(t);
            let p = Time::from_cycles(p);
            prop_assert!(t.div_floor(p) <= t.div_ceil(p));
        }

        #[test]
        fn saturating_sub_never_underflows(a in any::<u64>(), b in any::<u64>()) {
            let r = Time::from_cycles(a).saturating_sub(Time::from_cycles(b));
            prop_assert_eq!(r.cycles(), a.saturating_sub(b));
        }
    }
}
