//! Partitioned task sets with a unique global priority order.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::{ContentHasher, CoreId, ModelError, Platform, Task, TaskId, Time};

/// An immutable set of tasks with a unique, global, fixed-priority order,
/// statically partitioned onto cores.
///
/// On construction the tasks are sorted by decreasing priority, so
/// [`TaskId`]s are *priority ranks*: `TaskId::new(0)` is the paper's `τ1`
/// (highest priority) and `TaskId::new(n-1)` is `τn`. This makes the index
/// algebra of §II trivial: `hp(i)` is the prefix of ids before `i`, `lp(i)`
/// the suffix after it, and `aff(i, j) = hep(i) ∩ lp(j)` the ids in
/// `(j, i]`.
///
/// # Example
///
/// ```
/// use cpa_model::{CoreId, Priority, Task, TaskId, TaskSet, Time};
///
/// # fn main() -> Result<(), cpa_model::ModelError> {
/// let mk = |name: &str, prio: u32, core: usize| -> Result<Task, cpa_model::ModelError> {
///     Task::builder(name)
///         .processing_demand(Time::from_cycles(10))
///         .memory_demand(2)
///         .period(Time::from_cycles(100))
///         .deadline(Time::from_cycles(100))
///         .core(CoreId::new(core))
///         .priority(Priority::new(prio))
///         .cache_sets(16)
///         .build()
/// };
/// // Insertion order does not matter; priority does.
/// let tasks = TaskSet::new(vec![mk("low", 9, 0)?, mk("high", 1, 1)?])?;
/// assert_eq!(tasks[TaskId::new(0)].name(), "high");
/// assert_eq!(tasks.hp(TaskId::new(1)).count(), 1);
/// assert_eq!(tasks.on_core(CoreId::new(0)).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Task>", into = "Vec<Task>")]
pub struct TaskSet {
    tasks: Vec<Task>,
    /// Per-task canonical content hashes ([`Task::hash_content`]), in
    /// the same order as `tasks`. Computed once at construction — task
    /// sets are immutable — so fingerprinting for incremental
    /// re-analysis ([`crate::TaskSetFingerprint`]) is a plain copy
    /// instead of a re-hash of every cache-block set. Derived state:
    /// excluded from serialization by the `Vec<Task>` conversions and
    /// rebuilt on deserialization.
    task_hashes: Vec<u64>,
}

impl From<TaskSet> for Vec<Task> {
    fn from(set: TaskSet) -> Vec<Task> {
        set.tasks
    }
}

impl TryFrom<Vec<Task>> for TaskSet {
    type Error = ModelError;

    /// Same as [`TaskSet::new`]: deserialized task sets are re-validated.
    fn try_from(tasks: Vec<Task>) -> Result<TaskSet, ModelError> {
        TaskSet::new(tasks)
    }
}

impl TaskSet {
    /// Creates a task set, sorting by priority and validating global
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTaskSet`] if the set is empty, two tasks
    /// share a priority level, or the tasks' cache-block sets were built for
    /// different cache geometries.
    pub fn new(mut tasks: Vec<Task>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::InvalidTaskSet {
                reason: "task set is empty".into(),
            });
        }
        tasks.sort_by_key(|t| t.priority());
        for pair in tasks.windows(2) {
            if pair[0].priority() == pair[1].priority() {
                return Err(ModelError::InvalidTaskSet {
                    reason: format!(
                        "tasks `{}` and `{}` share priority {}",
                        pair[0].name(),
                        pair[1].name(),
                        pair[0].priority()
                    ),
                });
            }
        }
        let capacity = tasks[0].ecb().capacity();
        if let Some(bad) = tasks.iter().find(|t| t.ecb().capacity() != capacity) {
            return Err(ModelError::InvalidTaskSet {
                reason: format!(
                    "task `{}` uses {} cache sets but the set was built for {}",
                    bad.name(),
                    bad.ecb().capacity(),
                    capacity
                ),
            });
        }
        let task_hashes = tasks
            .iter()
            .map(|t| {
                let mut hasher = ContentHasher::new();
                t.hash_content(&mut hasher);
                hasher.finish()
            })
            .collect();
        Ok(TaskSet { tasks, task_hashes })
    }

    /// Assembles a task set from parts the caller has already validated
    /// and hashed — the hot-path constructor for code that builds many
    /// near-identical sets (the optimizer applies thousands of candidate
    /// configurations per search, and re-sorting, re-validating and
    /// re-hashing every cache-block set dominated its evaluation cost).
    ///
    /// # Caller contract
    ///
    /// `tasks` must already be sorted by strictly increasing priority,
    /// share one cache capacity, and be non-empty; `task_hashes[k]` must
    /// equal `Task::hash_content` of `tasks[k]`. Every invariant is
    /// `debug_assert`ed, and debug builds re-derive the hashes, so a
    /// violating caller fails loudly under `cargo test`; release builds
    /// trust the contract. Sets built here are indistinguishable from
    /// [`TaskSet::new`] output — same order, same hashes, same bytes.
    #[must_use]
    pub fn from_sorted_parts(tasks: Vec<Task>, task_hashes: Vec<u64>) -> TaskSet {
        debug_assert!(!tasks.is_empty(), "task set is empty");
        debug_assert_eq!(tasks.len(), task_hashes.len(), "one hash per task");
        debug_assert!(
            tasks.windows(2).all(|p| p[0].priority() < p[1].priority()),
            "tasks must be sorted by strictly increasing priority"
        );
        debug_assert!(
            tasks
                .iter()
                .all(|t| t.ecb().capacity() == tasks[0].ecb().capacity()),
            "tasks must share one cache capacity"
        );
        #[cfg(debug_assertions)]
        for (t, &h) in tasks.iter().zip(&task_hashes) {
            let mut hasher = ContentHasher::new();
            t.hash_content(&mut hasher);
            debug_assert_eq!(hasher.finish(), h, "stale content hash for `{}`", t.name());
        }
        TaskSet { tasks, task_hashes }
    }

    /// Disassembles the set into its sorted tasks and their content
    /// hashes — the inverse of [`TaskSet::from_sorted_parts`], for hot
    /// paths that patch a few tasks in place and reassemble instead of
    /// rebuilding from scratch.
    #[must_use]
    pub fn into_parts(self) -> (Vec<Task>, Vec<u64>) {
        (self.tasks, self.task_hashes)
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the set has no tasks (never true for a constructed
    /// set, but kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of cache sets all footprints in this set range over.
    #[must_use]
    pub fn cache_sets(&self) -> usize {
        self.tasks[0].ecb().capacity()
    }

    /// Iterates over the tasks in priority order (highest first).
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Iterates over all task ids in priority order.
    pub fn ids(&self) -> impl DoubleEndedIterator<Item = TaskId> + ExactSizeIterator {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// Returns the task with the given id, if any.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Finds the id of the task with the given name.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name() == name)
            .map(TaskId::new)
    }

    /// The id of the lowest-priority task `τn` (used by the round-robin
    /// bound, Eq. (8), which charges other cores at `BAO_n`).
    #[must_use]
    pub fn lowest_priority_id(&self) -> TaskId {
        TaskId::new(self.tasks.len() - 1)
    }

    /// `hp(i)`: ids of tasks with strictly higher priority than `i`.
    pub fn hp(&self, i: TaskId) -> impl DoubleEndedIterator<Item = TaskId> + ExactSizeIterator {
        (0..i.index()).map(TaskId::new)
    }

    /// `hep(i) = hp(i) ∪ {i}`.
    pub fn hep(&self, i: TaskId) -> impl DoubleEndedIterator<Item = TaskId> + ExactSizeIterator {
        (0..i.index() + 1).map(TaskId::new)
    }

    /// `lp(i)`: ids of tasks with strictly lower priority than `i`.
    pub fn lp(&self, i: TaskId) -> impl DoubleEndedIterator<Item = TaskId> + ExactSizeIterator {
        (i.index() + 1..self.tasks.len()).map(TaskId::new)
    }

    /// `aff(i, j) = hep(i) ∩ lp(j)`: the intermediate tasks that may be
    /// preempted by `τj` while executing within the response time of `τi`.
    ///
    /// Empty unless `j` has higher priority than `i`.
    pub fn aff(
        &self,
        i: TaskId,
        j: TaskId,
    ) -> impl DoubleEndedIterator<Item = TaskId> + ExactSizeIterator {
        let lo = j.index() + 1;
        let hi = (i.index() + 1).max(lo);
        (lo..hi).map(TaskId::new)
    }

    /// `Γ_x`: ids of tasks assigned to `core`, in priority order.
    pub fn on_core(&self, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.core() == core)
            .map(|(idx, _)| TaskId::new(idx))
    }

    /// `Γ_x ∩ hp(i)`.
    pub fn hp_on(&self, i: TaskId, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.hp(i).filter(move |&j| self[j].core() == core)
    }

    /// `Γ_x ∩ hep(i)`.
    pub fn hep_on(&self, i: TaskId, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.hep(i).filter(move |&j| self[j].core() == core)
    }

    /// `Γ_x ∩ lp(i)`.
    pub fn lp_on(&self, i: TaskId, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.lp(i).filter(move |&j| self[j].core() == core)
    }

    /// `Γ_x ∩ aff(i, j)`.
    pub fn aff_on(&self, i: TaskId, j: TaskId, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        self.aff(i, j).filter(move |&g| self[g].core() == core)
    }

    /// The set of distinct cores that have at least one task, in increasing
    /// index order.
    #[must_use]
    pub fn cores(&self) -> Vec<CoreId> {
        let mut cores: Vec<CoreId> = self.tasks.iter().map(Task::core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Total utilization `Σ (PD_i + MD_i·d_mem) / T_i` across all tasks.
    #[must_use]
    pub fn total_utilization(&self, d_mem: Time) -> f64 {
        self.tasks.iter().map(|t| t.utilization(d_mem)).sum()
    }

    /// Utilization of the tasks on one core.
    #[must_use]
    pub fn core_utilization(&self, core: CoreId, d_mem: Time) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.core() == core)
            .map(|t| t.utilization(d_mem))
            .sum()
    }

    /// Bus utilization: fraction of time the memory bus is busy if every
    /// task posts its full isolation demand every period,
    /// `Σ MD_i · d_mem / T_i`. Used by the "perfect bus" reference bound of
    /// the paper's Fig. 2.
    #[must_use]
    pub fn bus_utilization(&self, d_mem: Time) -> f64 {
        self.tasks
            .iter()
            .map(|t| {
                (t.memory_demand() as f64 * d_mem.cycles() as f64) / t.period().cycles() as f64
            })
            .sum()
    }

    /// Checks that every task's core exists on `platform` and that footprint
    /// capacities match the platform's cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CoreOutOfRange`] or
    /// [`ModelError::InvalidTaskSet`] accordingly.
    pub fn validate_against(&self, platform: &Platform) -> Result<(), ModelError> {
        for task in &self.tasks {
            if task.core().index() >= platform.cores() {
                return Err(ModelError::CoreOutOfRange {
                    task: task.name().to_string(),
                    core: task.core().index(),
                    cores: platform.cores(),
                });
            }
        }
        if self.cache_sets() != platform.cache().sets() {
            return Err(ModelError::InvalidTaskSet {
                reason: format!(
                    "task footprints use {} cache sets but the platform cache has {}",
                    self.cache_sets(),
                    platform.cache().sets()
                ),
            });
        }
        Ok(())
    }

    /// Canonical 64-bit content hash of the task set — the cache-key
    /// primitive of the `cpa-optimize` content-addressed result cache.
    ///
    /// The hash covers every semantic field of every task, visited in
    /// priority order. Because [`TaskSet::new`] sorts tasks by priority
    /// (and deserialization funnels through it), the hash is invariant
    /// under the orderings a cache key must not depend on:
    ///
    /// * **task reordering** — shuffling the `Vec<Task>` handed to
    ///   [`TaskSet::new`], or the array elements of the JSON encoding;
    /// * **serialization round trips** — `to_json` → `from_json` re-builds
    ///   field-identical tasks, so the hash is stable across any number of
    ///   round trips (all fields are integers and strings; no
    ///   floating-point drift is possible).
    ///
    /// Two semantically different sets hash differently up to 64-bit
    /// collisions; field boundaries are length-prefixed so adjacent
    /// variable-length fields cannot alias (see [`ContentHasher`]).
    ///
    /// ```
    /// # use cpa_model::{CoreId, Priority, Task, TaskSet, Time};
    /// # fn main() -> Result<(), cpa_model::ModelError> {
    /// # let mk = |name: &str, prio: u32| Task::builder(name)
    /// #     .processing_demand(Time::from_cycles(10))
    /// #     .memory_demand(2)
    /// #     .period(Time::from_cycles(100))
    /// #     .deadline(Time::from_cycles(100))
    /// #     .core(CoreId::new(0))
    /// #     .priority(Priority::new(prio))
    /// #     .cache_sets(16)
    /// #     .build()
    /// #     .unwrap();
    /// let a = TaskSet::new(vec![mk("x", 1), mk("y", 2)])?;
    /// let b = TaskSet::new(vec![mk("y", 2), mk("x", 1)])?;
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut hasher = ContentHasher::new();
        self.hash_content(&mut hasher);
        hasher.finish()
    }

    /// Feeds the set's canonical encoding into an existing
    /// [`ContentHasher`], for callers that fold more context (bus policy,
    /// search parameters) into one composite key.
    pub fn hash_content(&self, hasher: &mut ContentHasher) {
        hasher.write_usize(self.tasks.len());
        hasher.write_usize(self.cache_sets());
        for &h in &self.task_hashes {
            hasher.write_u64(h);
        }
    }

    /// The cached per-task canonical content hashes, in priority (id)
    /// order — the raw material of [`crate::TaskSetFingerprint`].
    #[must_use]
    pub fn task_content_hashes(&self) -> &[u64] {
        &self.task_hashes
    }

    /// Serializes the task set as pretty-printed JSON (an array of task
    /// records). This is the on-disk format used by generated workloads and
    /// validation repro files; [`TaskSet::from_json`] reads it back.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("task set serialization is infallible")
    }

    /// Parses a task set from the JSON produced by [`TaskSet::to_json`].
    ///
    /// All task and set invariants are re-validated, so hand-edited files
    /// cannot smuggle in inconsistent states (e.g. `MD^r > MD` or duplicate
    /// priorities).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTaskSet`] on malformed JSON or when the
    /// decoded tasks violate an invariant.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::InvalidTaskSet {
            reason: e.to_string(),
        })
    }
}

impl Index<TaskId> for TaskSet {
    type Output = Task;

    /// # Panics
    ///
    /// Panics if `id` is out of range for this task set.
    fn index(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TaskSet ({} tasks):", self.tasks.len())?;
        for task in &self.tasks {
            writeln!(f, "  {task}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheGeometry, Priority};

    fn task(name: &str, prio: u32, core: usize) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(10))
            .memory_demand(4)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .cache_sets(16)
            .build()
            .unwrap()
    }

    fn four_tasks() -> TaskSet {
        TaskSet::new(vec![
            task("d", 40, 1),
            task("b", 20, 0),
            task("a", 10, 0),
            task("c", 30, 1),
        ])
        .unwrap()
    }

    #[test]
    fn sorted_by_priority() {
        let ts = four_tasks();
        let names: Vec<&str> = ts.iter().map(Task::name).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert_eq!(ts[TaskId::new(0)].priority(), Priority::new(10));
        assert_eq!(ts.lowest_priority_id(), TaskId::new(3));
    }

    #[test]
    fn rejects_empty_and_duplicate_priorities() {
        assert!(TaskSet::new(vec![]).is_err());
        let err = TaskSet::new(vec![task("x", 5, 0), task("y", 5, 1)]).unwrap_err();
        assert!(err.to_string().contains("share priority"));
    }

    #[test]
    fn rejects_mixed_cache_geometries() {
        let other = Task::builder("z")
            .processing_demand(Time::from_cycles(1))
            .memory_demand(1)
            .period(Time::from_cycles(10))
            .deadline(Time::from_cycles(10))
            .core(CoreId::new(0))
            .priority(Priority::new(99))
            .cache_sets(32)
            .build()
            .unwrap();
        let err = TaskSet::new(vec![task("a", 1, 0), other]).unwrap_err();
        assert!(err.to_string().contains("cache sets"));
    }

    #[test]
    fn index_algebra() {
        let ts = four_tasks();
        let i = TaskId::new(2); // "c"
        let j = TaskId::new(0); // "a"
        assert_eq!(
            ts.hp(i).collect::<Vec<_>>(),
            vec![TaskId::new(0), TaskId::new(1)]
        );
        assert_eq!(ts.hep(i).count(), 3);
        assert_eq!(ts.lp(i).collect::<Vec<_>>(), vec![TaskId::new(3)]);
        // aff(c, a) = hep(c) ∩ lp(a) = {b, c}
        assert_eq!(
            ts.aff(i, j).collect::<Vec<_>>(),
            vec![TaskId::new(1), TaskId::new(2)]
        );
        // aff with j lower-priority than i is empty
        assert_eq!(ts.aff(j, i).count(), 0);
        // aff(i, i) is empty too: a task cannot preempt itself.
        assert_eq!(ts.aff(i, i).count(), 0);
    }

    #[test]
    fn core_partitions() {
        let ts = four_tasks();
        let core0: Vec<&str> = ts.on_core(CoreId::new(0)).map(|id| ts[id].name()).collect();
        assert_eq!(core0, ["a", "b"]);
        let i = TaskId::new(3); // "d" on core 1
        let hp_on1: Vec<&str> = ts
            .hp_on(i, CoreId::new(1))
            .map(|id| ts[id].name())
            .collect();
        assert_eq!(hp_on1, ["c"]);
        assert_eq!(ts.hep_on(i, CoreId::new(1)).count(), 2);
        assert_eq!(ts.lp_on(TaskId::new(0), CoreId::new(1)).count(), 2);
        assert_eq!(ts.cores(), vec![CoreId::new(0), CoreId::new(1)]);
    }

    #[test]
    fn utilizations() {
        let ts = four_tasks();
        let d_mem = Time::from_cycles(5);
        // Each task: (10 + 4*5)/100 = 0.3
        assert!((ts.total_utilization(d_mem) - 1.2).abs() < 1e-12);
        assert!((ts.core_utilization(CoreId::new(0), d_mem) - 0.6).abs() < 1e-12);
        // Bus: 4 tasks × 4·5/100
        assert!((ts.bus_utilization(d_mem) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn validate_against_platform() {
        let ts = four_tasks();
        let ok = Platform::builder()
            .cores(2)
            .cache(CacheGeometry::direct_mapped(16, 32))
            .memory_latency(Time::from_cycles(5))
            .build()
            .unwrap();
        assert!(ts.validate_against(&ok).is_ok());

        let too_few_cores = Platform::builder()
            .cores(1)
            .cache(CacheGeometry::direct_mapped(16, 32))
            .memory_latency(Time::from_cycles(5))
            .build()
            .unwrap();
        assert!(matches!(
            ts.validate_against(&too_few_cores),
            Err(ModelError::CoreOutOfRange { .. })
        ));

        let wrong_cache = Platform::builder()
            .cores(2)
            .cache(CacheGeometry::direct_mapped(64, 32))
            .memory_latency(Time::from_cycles(5))
            .build()
            .unwrap();
        assert!(ts.validate_against(&wrong_cache).is_err());
    }

    #[test]
    fn serde_round_trip_and_revalidation() {
        let ts = four_tasks();
        let json = serde_json::to_string(&ts).unwrap();
        let back: TaskSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
        // Duplicate priorities are rejected at deserialization time.
        let a = serde_json::to_string(&task("a", 5, 0)).unwrap();
        let dup = format!("[{a},{a}]");
        let err = serde_json::from_str::<TaskSet>(&dup).unwrap_err();
        assert!(err.to_string().contains("share priority"), "{err}");
        // And the empty set too.
        assert!(serde_json::from_str::<TaskSet>("[]").is_err());
    }

    #[test]
    fn json_round_trip_preserves_footprints() {
        use crate::CacheBlockSet;

        let rich = Task::builder("rich")
            .processing_demand(Time::from_cycles(40))
            .memory_demand(6)
            .residual_memory_demand(2)
            .period(Time::from_cycles(200))
            .deadline(Time::from_cycles(150))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(16, [0, 1, 2, 5, 9]).unwrap())
            .ucb(CacheBlockSet::from_blocks(16, [1, 5]).unwrap())
            .pcb(CacheBlockSet::from_blocks(16, [0, 2, 9]).unwrap())
            .build()
            .unwrap();
        let ts = TaskSet::new(vec![rich, task("plain", 7, 1)]).unwrap();

        let json = ts.to_json();
        let back = TaskSet::from_json(&json).unwrap();
        assert_eq!(back, ts);
        // The convenience round trip agrees with plain serde_json.
        let via_serde: TaskSet = serde_json::from_str(&json).unwrap();
        assert_eq!(via_serde, ts);

        let r = back.id_of("rich").unwrap();
        assert_eq!(back[r].residual_memory_demand(), 2);
        assert_eq!(back[r].ucb().len(), 2);
        assert_eq!(back[r].pcb().len(), 3);
    }

    #[test]
    fn from_json_rejects_garbage_and_invalid_tasks() {
        let err = TaskSet::from_json("not json").unwrap_err();
        assert!(matches!(err, ModelError::InvalidTaskSet { .. }));

        // A tampered repro file cannot smuggle in `MD^r > MD` (`md_r`
        // defaults to `md`, 4 for these tasks).
        let json = four_tasks()
            .to_json()
            .replace("\"md_r\": 4", "\"md_r\": 99");
        let err = TaskSet::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("exceeds memory demand"), "{err}");
    }

    #[test]
    fn lookup_and_iteration() {
        let ts = four_tasks();
        assert_eq!(ts.id_of("c"), Some(TaskId::new(2)));
        assert_eq!(ts.id_of("zz"), None);
        assert!(ts.get(TaskId::new(99)).is_none());
        assert_eq!((&ts).into_iter().count(), 4);
        assert_eq!(ts.ids().count(), 4);
        assert!(!ts.is_empty());
        assert!(ts.to_string().contains("4 tasks"));
    }
}
