//! System model for cache persistence-aware multicore bus contention analysis.
//!
//! This crate defines the data model shared by every other crate in the
//! workspace: discrete [`Time`] in processor cycles, typed identifiers
//! ([`TaskId`], [`CoreId`], [`Priority`]), sets of cache blocks
//! ([`CacheBlockSet`]), sporadic [`Task`]s characterised by the quadruple
//! `(PD_i, MD_i, D_i, T_i)` extended with cache footprint information
//! (`UCB_i`, `ECB_i`, `PCB_i`, `MD_i^r`), partitioned [`TaskSet`]s with a
//! unique global priority order, and the multicore [`Platform`]
//! (`m` timing-compositional cores, private instruction caches, a shared
//! memory bus with per-access cost `d_mem`).
//!
//! The model follows §II of *Cache Persistence-Aware Memory Bus Contention
//! Analysis for Multicore Systems* (Rashid, Nelissen, Tovar — DATE 2020).
//!
//! # Example
//!
//! Build the three-task system of the paper's Fig. 1 and query the priority
//! index algebra:
//!
//! ```
//! use cpa_model::{
//!     CacheBlockSet, CacheGeometry, CoreId, Platform, Priority, Task, TaskSet, Time,
//! };
//!
//! # fn main() -> Result<(), cpa_model::ModelError> {
//! let sets = 256;
//! let tau1 = Task::builder("tau1")
//!     .processing_demand(Time::from_cycles(4))
//!     .memory_demand(6)
//!     .residual_memory_demand(1)
//!     .period(Time::from_cycles(100))
//!     .deadline(Time::from_cycles(100))
//!     .core(CoreId::new(0))
//!     .priority(Priority::new(1))
//!     .ecb(CacheBlockSet::from_blocks(sets, 5..=10)?)
//!     .pcb(CacheBlockSet::from_blocks(sets, [5, 6, 7, 8, 10])?)
//!     .ucb(CacheBlockSet::from_blocks(sets, [5, 6, 7, 8, 10])?)
//!     .build()?;
//! let tau2 = Task::builder("tau2")
//!     .processing_demand(Time::from_cycles(32))
//!     .memory_demand(8)
//!     .residual_memory_demand(8)
//!     .period(Time::from_cycles(400))
//!     .deadline(Time::from_cycles(400))
//!     .core(CoreId::new(0))
//!     .priority(Priority::new(2))
//!     .ecb(CacheBlockSet::from_blocks(sets, 1..=6)?)
//!     .ucb(CacheBlockSet::from_blocks(sets, [5, 6])?)
//!     .build()?;
//! let tasks = TaskSet::new(vec![tau1, tau2])?;
//! assert_eq!(tasks.hp(tasks.id_of("tau2").unwrap()).count(), 1);
//!
//! let platform = Platform::builder()
//!     .cores(2)
//!     .cache(CacheGeometry::direct_mapped(sets, 32))
//!     .memory_latency(Time::from_cycles(1))
//!     .build()?;
//! assert_eq!(platform.cores(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod blocks;
mod canon;
mod delta;
mod error;
mod ids;
mod platform;
mod task;
mod taskset;
mod time;

pub use blocks::CacheBlockSet;
pub use canon::ContentHasher;
pub use delta::{TaskSetDelta, TaskSetFingerprint};
pub use error::ModelError;
pub use ids::{CoreId, Priority, TaskId};
pub use platform::{CacheGeometry, Platform, PlatformBuilder};
pub use task::{Task, TaskBuilder};
pub use taskset::TaskSet;
pub use time::Time;
