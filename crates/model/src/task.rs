//! Sporadic tasks with cache footprint information.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CacheBlockSet, CoreId, ModelError, Priority, Time};

/// A sporadic, constrained-deadline task (§II of the paper).
///
/// A task is characterised by the quadruple `(PD_i, MD_i, D_i, T_i)`:
///
/// * `PD_i` — [`processing_demand`](Task::processing_demand): worst-case
///   execution time assuming every memory access hits in the cache;
/// * `MD_i` — [`memory_demand`](Task::memory_demand): worst-case number of
///   main-memory requests of any job executing in isolation;
/// * `D_i` — [`deadline`](Task::deadline), relative, with `D_i ≤ T_i`;
/// * `T_i` — [`period`](Task::period): minimum inter-arrival time;
///
/// extended by the cache-persistence parameters of §IV:
///
/// * `MD_i^r` — [`residual_memory_demand`](Task::residual_memory_demand):
///   worst-case memory demand of a job when all PCBs are already cached;
/// * `UCB_i`, `ECB_i`, `PCB_i` — useful, evicting and persistent cache
///   blocks ([`ucb`](Task::ucb), [`ecb`](Task::ecb), [`pcb`](Task::pcb)).
///
/// Tasks are immutable once built; use [`Task::builder`] to construct them.
/// Deserialization re-validates every invariant (it round-trips through
/// the builder), so a hand-edited JSON task cannot smuggle in a
/// `MD^r > MD` or a UCB outside the ECBs.
///
/// # Example
///
/// ```
/// use cpa_model::{CacheBlockSet, CoreId, Priority, Task, Time};
///
/// # fn main() -> Result<(), cpa_model::ModelError> {
/// let task = Task::builder("fdct")
///     .processing_demand(Time::from_cycles(6_550))
///     .memory_demand(6_017)
///     .residual_memory_demand(819)
///     .period(Time::from_cycles(1_000_000))
///     .deadline(Time::from_cycles(1_000_000))
///     .core(CoreId::new(0))
///     .priority(Priority::new(3))
///     .ecb(CacheBlockSet::contiguous(256, 0, 106))
///     .pcb(CacheBlockSet::contiguous(256, 0, 22))
///     .ucb(CacheBlockSet::contiguous(256, 0, 58))
///     .build()?;
/// assert_eq!(task.memory_demand(), 6_017);
/// assert!(task.pcb().is_subset(task.ecb()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "TaskData", into = "TaskData")]
pub struct Task {
    name: String,
    pd: Time,
    md: u64,
    md_r: u64,
    deadline: Time,
    period: Time,
    core: CoreId,
    priority: Priority,
    ucb: CacheBlockSet,
    ecb: CacheBlockSet,
    pcb: CacheBlockSet,
}

/// Serialization shadow of [`Task`]: plain data, no invariants. Conversion
/// back into a [`Task`] runs the builder's full validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TaskData {
    name: String,
    pd: Time,
    md: u64,
    md_r: u64,
    deadline: Time,
    period: Time,
    core: CoreId,
    priority: Priority,
    ucb: CacheBlockSet,
    ecb: CacheBlockSet,
    pcb: CacheBlockSet,
}

impl From<Task> for TaskData {
    fn from(t: Task) -> TaskData {
        TaskData {
            name: t.name,
            pd: t.pd,
            md: t.md,
            md_r: t.md_r,
            deadline: t.deadline,
            period: t.period,
            core: t.core,
            priority: t.priority,
            ucb: t.ucb,
            ecb: t.ecb,
            pcb: t.pcb,
        }
    }
}

impl TryFrom<TaskData> for Task {
    type Error = ModelError;

    fn try_from(d: TaskData) -> Result<Task, ModelError> {
        Task::builder(d.name)
            .processing_demand(d.pd)
            .memory_demand(d.md)
            .residual_memory_demand(d.md_r)
            .deadline(d.deadline)
            .period(d.period)
            .core(d.core)
            .priority(d.priority)
            .ucb(d.ucb)
            .ecb(d.ecb)
            .pcb(d.pcb)
            .build()
    }
}

impl Task {
    /// Starts building a task with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> TaskBuilder {
        TaskBuilder::new(name)
    }

    /// The task's human-readable name (e.g. the Mälardalen benchmark it was
    /// instantiated from).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `PD_i`: worst-case execution time with an always-hitting cache.
    #[must_use]
    pub fn processing_demand(&self) -> Time {
        self.pd
    }

    /// `MD_i`: worst-case number of main-memory requests of a job in
    /// isolation.
    #[must_use]
    pub fn memory_demand(&self) -> u64 {
        self.md
    }

    /// `MD_i^r`: worst-case memory demand of a job whose PCBs are already
    /// cached. Always `≤ MD_i`.
    #[must_use]
    pub fn residual_memory_demand(&self) -> u64 {
        self.md_r
    }

    /// `D_i`: relative deadline (constrained: `D_i ≤ T_i`).
    #[must_use]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// `T_i`: minimum inter-arrival time.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The core this task is statically assigned to (partitioned FPPS).
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The task's unique fixed priority (lower level = higher priority).
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// `UCB_i`: useful cache blocks — blocks that are cached at some program
    /// point and reused at a later reachable point without eviction.
    #[must_use]
    pub fn ucb(&self) -> &CacheBlockSet {
        &self.ucb
    }

    /// `ECB_i`: evicting cache blocks — every cache set the task touches.
    #[must_use]
    pub fn ecb(&self) -> &CacheBlockSet {
        &self.ecb
    }

    /// `PCB_i`: persistent cache blocks — blocks that, once loaded, the task
    /// never evicts or invalidates itself.
    #[must_use]
    pub fn pcb(&self) -> &CacheBlockSet {
        &self.pcb
    }

    /// Worst-case execution demand of one job including memory service time:
    /// `PD_i + MD_i · d_mem`. This is the paper's initialisation value for
    /// the WCRT iteration (§IV) and the natural utilization numerator.
    ///
    /// ```
    /// # use cpa_model::{CoreId, Priority, Task, Time};
    /// # fn main() -> Result<(), cpa_model::ModelError> {
    /// # let t = Task::builder("t")
    /// #     .processing_demand(Time::from_cycles(100))
    /// #     .memory_demand(10)
    /// #     .period(Time::from_cycles(10_000))
    /// #     .deadline(Time::from_cycles(10_000))
    /// #     .core(CoreId::new(0))
    /// #     .priority(Priority::new(1))
    /// #     .cache_sets(16)
    /// #     .build()?;
    /// assert_eq!(t.total_demand(Time::from_cycles(5)), Time::from_cycles(150));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn total_demand(&self, d_mem: Time) -> Time {
        self.pd + d_mem * self.md
    }

    /// Utilization of the task with memory time included:
    /// `(PD_i + MD_i · d_mem) / T_i`.
    #[must_use]
    pub fn utilization(&self, d_mem: Time) -> f64 {
        self.total_demand(d_mem).cycles() as f64 / self.period.cycles() as f64
    }

    /// Feeds the task's canonical encoding into a [`crate::ContentHasher`]
    /// — every semantic field in declaration order, with the block sets in
    /// their sorted-index encoding. Two tasks hash equally iff they are
    /// equal, regardless of how either was constructed or serialized.
    pub fn hash_content(&self, hasher: &mut crate::ContentHasher) {
        hasher.write_str(&self.name);
        hasher.write_u64(self.pd.cycles());
        hasher.write_u64(self.md);
        hasher.write_u64(self.md_r);
        hasher.write_u64(self.deadline.cycles());
        hasher.write_u64(self.period.cycles());
        hasher.write_usize(self.core.index());
        hasher.write_u64(u64::from(self.priority.level()));
        self.ucb.hash_content(hasher);
        self.ecb.hash_content(hasher);
        self.pcb.hash_content(hasher);
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(PD={}, MD={}, MD^r={}, D={}, T={}, {}@{})",
            self.name,
            self.pd,
            self.md,
            self.md_r,
            self.deadline,
            self.period,
            self.priority,
            self.core
        )
    }
}

/// Builder for [`Task`] (see [`Task::builder`]).
///
/// Required fields: `processing_demand`, `memory_demand`, `period`,
/// `deadline`, `core`, `priority`, and a cache geometry (either via any of
/// `ecb`/`ucb`/`pcb` or via [`TaskBuilder::cache_sets`] for tasks with an
/// empty footprint). `residual_memory_demand` defaults to `memory_demand`
/// (i.e. no persistence benefit) and the block sets default to empty.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    name: String,
    pd: Option<Time>,
    md: Option<u64>,
    md_r: Option<u64>,
    deadline: Option<Time>,
    period: Option<Time>,
    core: Option<CoreId>,
    priority: Option<Priority>,
    ucb: Option<CacheBlockSet>,
    ecb: Option<CacheBlockSet>,
    pcb: Option<CacheBlockSet>,
    cache_sets: Option<usize>,
}

impl TaskBuilder {
    fn new(name: impl Into<String>) -> Self {
        TaskBuilder {
            name: name.into(),
            pd: None,
            md: None,
            md_r: None,
            deadline: None,
            period: None,
            core: None,
            priority: None,
            ucb: None,
            ecb: None,
            pcb: None,
            cache_sets: None,
        }
    }

    /// Sets `PD_i`, the cache-hit-only worst-case execution time.
    #[must_use]
    pub fn processing_demand(mut self, pd: Time) -> Self {
        self.pd = Some(pd);
        self
    }

    /// Sets `MD_i`, the worst-case memory access demand in isolation.
    #[must_use]
    pub fn memory_demand(mut self, md: u64) -> Self {
        self.md = Some(md);
        self
    }

    /// Sets `MD_i^r`, the residual memory access demand. Defaults to `MD_i`.
    #[must_use]
    pub fn residual_memory_demand(mut self, md_r: u64) -> Self {
        self.md_r = Some(md_r);
        self
    }

    /// Sets the relative deadline `D_i`.
    #[must_use]
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the minimum inter-arrival time `T_i`.
    #[must_use]
    pub fn period(mut self, period: Time) -> Self {
        self.period = Some(period);
        self
    }

    /// Assigns the task to a core.
    #[must_use]
    pub fn core(mut self, core: CoreId) -> Self {
        self.core = Some(core);
        self
    }

    /// Sets the unique fixed priority.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Sets `UCB_i`.
    #[must_use]
    pub fn ucb(mut self, ucb: CacheBlockSet) -> Self {
        self.ucb = Some(ucb);
        self
    }

    /// Sets `ECB_i`.
    #[must_use]
    pub fn ecb(mut self, ecb: CacheBlockSet) -> Self {
        self.ecb = Some(ecb);
        self
    }

    /// Sets `PCB_i`.
    #[must_use]
    pub fn pcb(mut self, pcb: CacheBlockSet) -> Self {
        self.pcb = Some(pcb);
        self
    }

    /// Declares the cache geometry (number of cache sets) for tasks that do
    /// not provide any block set; the footprint sets default to empty sets of
    /// this capacity.
    #[must_use]
    pub fn cache_sets(mut self, sets: usize) -> Self {
        self.cache_sets = Some(sets);
        self
    }

    /// Builds the task, validating all model invariants.
    ///
    /// # Errors
    ///
    /// * [`ModelError::MissingField`] if a required field was not set or the
    ///   cache geometry cannot be inferred;
    /// * [`ModelError::InvalidTask`] if `T_i = 0`, `D_i = 0`, `D_i > T_i`,
    ///   `MD_i^r > MD_i`, the block sets have inconsistent capacities, or
    ///   `UCB_i`/`PCB_i` are not subsets of `ECB_i`.
    pub fn build(self) -> Result<Task, ModelError> {
        let invalid = |reason: String| ModelError::InvalidTask {
            task: self.name.clone(),
            reason,
        };

        let pd = self.pd.ok_or(ModelError::MissingField {
            field: "processing_demand",
        })?;
        let md = self.md.ok_or(ModelError::MissingField {
            field: "memory_demand",
        })?;
        let period = self
            .period
            .ok_or(ModelError::MissingField { field: "period" })?;
        let deadline = self
            .deadline
            .ok_or(ModelError::MissingField { field: "deadline" })?;
        let core = self
            .core
            .ok_or(ModelError::MissingField { field: "core" })?;
        let priority = self
            .priority
            .ok_or(ModelError::MissingField { field: "priority" })?;
        let md_r = self.md_r.unwrap_or(md);

        let capacity = self
            .ecb
            .as_ref()
            .or(self.ucb.as_ref())
            .or(self.pcb.as_ref())
            .map(CacheBlockSet::capacity)
            .or(self.cache_sets)
            .ok_or(ModelError::MissingField {
                field: "ecb or cache_sets",
            })?;

        let ecb = self.ecb.unwrap_or_else(|| CacheBlockSet::new(capacity));
        let ucb = self.ucb.unwrap_or_else(|| CacheBlockSet::new(capacity));
        let pcb = self.pcb.unwrap_or_else(|| CacheBlockSet::new(capacity));

        if period.is_zero() {
            return Err(invalid("period must be positive".into()));
        }
        if deadline.is_zero() {
            return Err(invalid("deadline must be positive".into()));
        }
        if deadline > period {
            return Err(invalid(format!(
                "deadline {deadline} exceeds period {period} (constrained-deadline model)"
            )));
        }
        if md_r > md {
            return Err(invalid(format!(
                "residual memory demand {md_r} exceeds memory demand {md}"
            )));
        }
        if ucb.capacity() != capacity || pcb.capacity() != capacity || ecb.capacity() != capacity {
            return Err(invalid(format!(
                "block sets have inconsistent capacities ({}, {}, {})",
                ecb.capacity(),
                ucb.capacity(),
                pcb.capacity()
            )));
        }
        if !ucb.is_subset(&ecb) {
            return Err(invalid("UCBs must be a subset of ECBs".into()));
        }
        if !pcb.is_subset(&ecb) {
            return Err(invalid("PCBs must be a subset of ECBs".into()));
        }

        Ok(Task {
            name: self.name,
            pd,
            md,
            md_r,
            deadline,
            period,
            core,
            priority,
            ucb,
            ecb,
            pcb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskBuilder {
        Task::builder("t")
            .processing_demand(Time::from_cycles(10))
            .memory_demand(5)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .cache_sets(16)
    }

    #[test]
    fn builds_with_defaults() {
        let t = base().build().unwrap();
        assert_eq!(t.residual_memory_demand(), 5, "MD^r defaults to MD");
        assert!(t.ecb().is_empty());
        assert!(t.ucb().is_empty());
        assert!(t.pcb().is_empty());
        assert_eq!(t.ecb().capacity(), 16);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn missing_fields_reported() {
        let err = Task::builder("t").build().unwrap_err();
        assert!(matches!(
            err,
            ModelError::MissingField {
                field: "processing_demand"
            }
        ));
        let err = base().clone_without_core().build().unwrap_err();
        assert!(matches!(err, ModelError::MissingField { field: "core" }));
    }

    impl TaskBuilder {
        fn clone_without_core(mut self) -> Self {
            self.core = None;
            self
        }
    }

    #[test]
    fn capacity_inferred_from_any_set() {
        let t = Task::builder("t")
            .processing_demand(Time::from_cycles(1))
            .memory_demand(1)
            .period(Time::from_cycles(10))
            .deadline(Time::from_cycles(10))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::contiguous(64, 0, 4))
            .build()
            .unwrap();
        assert_eq!(t.ucb().capacity(), 64);
    }

    #[test]
    fn rejects_unconstrained_deadline() {
        let err = base().deadline(Time::from_cycles(200)).build().unwrap_err();
        assert!(err.to_string().contains("exceeds period"));
    }

    #[test]
    fn rejects_zero_period_and_deadline() {
        assert!(base().period(Time::ZERO).build().is_err());
        assert!(base().deadline(Time::ZERO).build().is_err());
    }

    #[test]
    fn rejects_residual_above_md() {
        let err = base().residual_memory_demand(6).build().unwrap_err();
        assert!(err.to_string().contains("exceeds memory demand"));
    }

    #[test]
    fn rejects_non_subset_footprints() {
        let ecb = CacheBlockSet::contiguous(16, 0, 2);
        let ucb = CacheBlockSet::contiguous(16, 4, 2);
        let err = base().ecb(ecb.clone()).ucb(ucb).build().unwrap_err();
        assert!(err.to_string().contains("UCBs"));
        let pcb = CacheBlockSet::contiguous(16, 4, 2);
        let err = base().ecb(ecb).pcb(pcb).build().unwrap_err();
        assert!(err.to_string().contains("PCBs"));
    }

    #[test]
    fn rejects_mixed_capacities() {
        let err = base()
            .ecb(CacheBlockSet::contiguous(16, 0, 4))
            .ucb(CacheBlockSet::contiguous(32, 0, 2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("inconsistent capacities"));
    }

    #[test]
    fn demand_and_utilization() {
        let t = base().build().unwrap();
        let d_mem = Time::from_cycles(4);
        assert_eq!(t.total_demand(d_mem), Time::from_cycles(30));
        let u = t.utilization(d_mem);
        assert!((u - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_parameters() {
        let t = base().build().unwrap();
        let s = t.to_string();
        assert!(s.contains("PD=10cy"));
        assert!(s.contains("MD=5"));
    }

    #[test]
    fn serde_round_trip() {
        let t = base()
            .ecb(CacheBlockSet::contiguous(16, 0, 4))
            .pcb(CacheBlockSet::contiguous(16, 1, 2))
            .residual_memory_demand(2)
            .build()
            .unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn deserialization_revalidates_invariants() {
        let t = base().build().unwrap();
        let json = serde_json::to_string(&t).unwrap();
        // Smuggle MD^r > MD into the serialized form.
        let hacked = json.replace("\"md_r\":5", "\"md_r\":99");
        assert_ne!(hacked, json, "fixture must actually patch the field");
        let err = serde_json::from_str::<Task>(&hacked).unwrap_err();
        assert!(err.to_string().contains("exceeds memory demand"), "{err}");
    }
}
