//! Task-set fingerprints and deltas for incremental re-analysis.
//!
//! Campaign sweeps and optimizer searches solve long chains of *related*
//! task sets: adjacent candidates differ in one task's core, rank or
//! cache coloring, and consecutive configurations of the same set differ
//! in nothing at all. The analysis engine can retain per-task and
//! per-`(level, core)` cached state across such solves — but only when it
//! can *certify* that the retained entries were derived from identical
//! inputs. A [`TaskSetFingerprint`] captures exactly the inputs the
//! engine's caches consume (the canonical per-task content hashes of
//! [`crate::Task::hash_content`], which cover every semantic field
//! including core and priority, plus each task's position and core
//! index); a [`TaskSetDelta`] compares two fingerprints and answers the
//! two certification queries the engine asks:
//!
//! * [`TaskSetDelta::unchanged_prefix`] — the number of leading tasks
//!   (in the canonical priority order) that are bitwise-identical in
//!   content *and* global index. The CRPD/CPRO tables are filled by a
//!   running-union sweep in ascending id order, so every table entry
//!   `(a, b)` with `max(a, b) < unchanged_prefix` is provably unchanged.
//! * [`TaskSetDelta::core_stable`] — whether *every* task mapped to a
//!   core (in either the old or the new set) lies inside the unchanged
//!   prefix, i.e. the core's member list and all member-dependent table
//!   rows are provably unchanged.
//!
//! The fingerprint deliberately stores only hashes and core indices: a
//! worker can keep the fingerprint of the previous solve without keeping
//! the previous [`TaskSet`](crate::TaskSet) alive.

use crate::TaskSet;

/// Canonical per-task content hashes plus core assignment of one task
/// set — the comparison key for [`TaskSetDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSetFingerprint {
    /// Per-task canonical content hash, in priority (id) order.
    task_hashes: Vec<u64>,
    /// Per-task core index, same order.
    cores: Vec<usize>,
    /// Cache geometry the block sets were encoded against.
    cache_sets: usize,
}

impl TaskSetFingerprint {
    /// Fingerprints `tasks` in its canonical priority order.
    #[must_use]
    pub fn of(tasks: &TaskSet) -> Self {
        TaskSetFingerprint {
            task_hashes: tasks.task_content_hashes().to_vec(),
            cores: tasks.iter().map(|t| t.core().index()).collect(),
            cache_sets: tasks.cache_sets(),
        }
    }

    /// Number of tasks fingerprinted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.task_hashes.len()
    }

    /// Whether the fingerprint covers no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.task_hashes.is_empty()
    }

    /// Compares `self` (the previous solve) against `next` (the upcoming
    /// solve) and derives the certified-unchanged structure.
    #[must_use]
    pub fn delta(&self, next: &TaskSetFingerprint) -> TaskSetDelta {
        let unchanged_prefix = if self.cache_sets == next.cache_sets {
            self.task_hashes
                .iter()
                .zip(&next.task_hashes)
                .zip(self.cores.iter().zip(&next.cores))
                .take_while(|((ha, hb), (ca, cb))| ha == hb && ca == cb)
                .count()
        } else {
            0
        };
        let num_cores = self
            .cores
            .iter()
            .chain(&next.cores)
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0);
        let mut core_stable = vec![true; num_cores];
        for fp in [self, next] {
            for (idx, &core) in fp.cores.iter().enumerate() {
                if idx >= unchanged_prefix {
                    core_stable[core] = false;
                }
            }
        }
        TaskSetDelta {
            unchanged_prefix,
            identical: unchanged_prefix == self.len() && unchanged_prefix == next.len(),
            core_stable,
        }
    }
}

/// The certified-unchanged structure between two task-set fingerprints
/// (see the module docs for the invalidation rules it encodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSetDelta {
    unchanged_prefix: usize,
    identical: bool,
    core_stable: Vec<bool>,
}

impl TaskSetDelta {
    /// Number of leading tasks identical in content and global index in
    /// both sets. Any cached value derived only from tasks below this
    /// index is provably unchanged.
    #[must_use]
    pub fn unchanged_prefix(&self) -> usize {
        self.unchanged_prefix
    }

    /// Whether the two sets are entirely identical.
    #[must_use]
    pub fn identical(&self) -> bool {
        self.identical
    }

    /// Whether every task on `core` — in *both* the old and the new set —
    /// lies inside the unchanged prefix, so the core's member list and
    /// every member-derived table row are unchanged.
    #[must_use]
    pub fn core_stable(&self, core: usize) -> bool {
        self.core_stable.get(core).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheBlockSet, CoreId, Priority, Task, Time};

    fn task(name: &str, prio: u32, core: usize, md: u64) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(10))
            .memory_demand(md)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(16, 0, 4))
            .build()
            .unwrap()
    }

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::new(tasks).unwrap()
    }

    #[test]
    fn identical_sets_have_full_prefix_and_stable_cores() {
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let b = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert!(delta.identical());
        assert_eq!(delta.unchanged_prefix(), 2);
        assert!(delta.core_stable(0) && delta.core_stable(1));
    }

    #[test]
    fn changed_task_truncates_prefix_and_destabilises_its_core() {
        let a = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 3),
            task("c", 3, 0, 4),
        ]);
        // τb's memory demand changes: prefix stops at 1, cores 0 and 1
        // both carry a task at index ≥ 1 so neither is stable.
        let b = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 9),
            task("c", 3, 0, 4),
        ]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert!(!delta.identical());
        assert_eq!(delta.unchanged_prefix(), 1);
        assert!(!delta.core_stable(0));
        assert!(!delta.core_stable(1));
    }

    #[test]
    fn tail_change_keeps_other_cores_stable() {
        let a = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 0, 3),
            task("c", 3, 1, 4),
        ]);
        let b = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 0, 3),
            task("c", 3, 1, 9),
        ]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 2);
        assert!(
            delta.core_stable(0),
            "core 0's tasks all sit below the change"
        );
        assert!(!delta.core_stable(1));
    }

    #[test]
    fn core_move_is_a_change() {
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let b = set(vec![task("a", 1, 1, 2), task("b", 2, 1, 3)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 0);
    }

    #[test]
    fn length_mismatch_is_never_identical() {
        let a = set(vec![task("a", 1, 0, 2)]);
        let b = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let fa = TaskSetFingerprint::of(&a);
        let fb = TaskSetFingerprint::of(&b);
        let delta = fa.delta(&fb);
        assert!(!delta.identical());
        assert_eq!(delta.unchanged_prefix(), 1);
        assert!(!delta.core_stable(1));
        // Empty previous fingerprint: nothing certifiable.
        let empty = TaskSetFingerprint::of(&set(vec![task("x", 1, 0, 1)]));
        assert_eq!(empty.delta(&fb).unchanged_prefix(), 0);
    }
}
