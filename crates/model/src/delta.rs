//! Task-set fingerprints and deltas for incremental re-analysis.
//!
//! Campaign sweeps and optimizer searches solve long chains of *related*
//! task sets: adjacent candidates differ in one task's core, rank or
//! cache coloring, and consecutive configurations of the same set differ
//! in nothing at all. The analysis engine can retain per-task and
//! per-`(level, core)` cached state across such solves — but only when it
//! can *certify* that the retained entries were derived from identical
//! inputs. A [`TaskSetFingerprint`] captures exactly the inputs the
//! engine's caches consume (the canonical per-task content hashes of
//! [`crate::Task::hash_content`], which cover every semantic field
//! including core and priority, plus each task's position and core
//! index); a [`TaskSetDelta`] compares two fingerprints and answers the
//! two certification queries the engine asks:
//!
//! * [`TaskSetDelta::unchanged_prefix`] — the number of leading tasks
//!   (in the canonical priority order) that are bitwise-identical in
//!   content *and* global index. The CRPD/CPRO tables are filled by a
//!   running-union sweep in ascending id order, so every table entry
//!   `(a, b)` with `max(a, b) < unchanged_prefix` is provably unchanged.
//! * [`TaskSetDelta::core_stable`] — whether *every* task mapped to a
//!   core (in either the old or the new set) lies inside the unchanged
//!   prefix, i.e. the core's member list and all member-dependent table
//!   rows are provably unchanged.
//!
//! Partial re-solve (DESIGN.md §16) asks two finer-grained queries that
//! look *past* the first divergence:
//!
//! * [`TaskSetDelta::task_unchanged`] — whether the task at one global
//!   index is identical in content and core in both sets, regardless of
//!   what happened at lower indices.
//! * [`TaskSetDelta::core_untouched`] — whether every task on a core (in
//!   either set) is individually unchanged, so the core's member list,
//!   its per-pair CRPD/CPRO table rows, and every member's hp set are
//!   provably identical even when *other* cores diverged.
//!
//! The fingerprint deliberately stores only hashes and core indices: a
//! worker can keep the fingerprint of the previous solve without keeping
//! the previous [`TaskSet`](crate::TaskSet) alive.

use crate::TaskSet;

/// Canonical per-task content hashes plus core assignment of one task
/// set — the comparison key for [`TaskSetDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSetFingerprint {
    /// Per-task canonical content hash, in priority (id) order.
    task_hashes: Vec<u64>,
    /// Per-task core index, same order.
    cores: Vec<usize>,
    /// Cache geometry the block sets were encoded against.
    cache_sets: usize,
}

impl TaskSetFingerprint {
    /// Fingerprints `tasks` in its canonical priority order.
    #[must_use]
    pub fn of(tasks: &TaskSet) -> Self {
        TaskSetFingerprint {
            task_hashes: tasks.task_content_hashes().to_vec(),
            cores: tasks.iter().map(|t| t.core().index()).collect(),
            cache_sets: tasks.cache_sets(),
        }
    }

    /// Number of tasks fingerprinted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.task_hashes.len()
    }

    /// Whether the fingerprint covers no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.task_hashes.is_empty()
    }

    /// Compares `self` (the previous solve) against `next` (the upcoming
    /// solve) and derives the certified-unchanged structure.
    #[must_use]
    pub fn delta(&self, next: &TaskSetFingerprint) -> TaskSetDelta {
        let unchanged_prefix = if self.cache_sets == next.cache_sets {
            self.task_hashes
                .iter()
                .zip(&next.task_hashes)
                .zip(self.cores.iter().zip(&next.cores))
                .take_while(|((ha, hb), (ca, cb))| ha == hb && ca == cb)
                .count()
        } else {
            0
        };
        let len = self.len().max(next.len());
        let mut unchanged = vec![false; len];
        if self.cache_sets == next.cache_sets {
            for (i, slot) in unchanged
                .iter_mut()
                .enumerate()
                .take(self.len().min(next.len()))
            {
                *slot =
                    self.task_hashes[i] == next.task_hashes[i] && self.cores[i] == next.cores[i];
            }
        }
        let num_cores = self
            .cores
            .iter()
            .chain(&next.cores)
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0);
        let mut core_stable = vec![true; num_cores];
        let mut core_untouched = vec![true; num_cores];
        for fp in [self, next] {
            for (idx, &core) in fp.cores.iter().enumerate() {
                if idx >= unchanged_prefix {
                    core_stable[core] = false;
                }
                if !unchanged[idx] {
                    core_untouched[core] = false;
                }
            }
        }
        TaskSetDelta {
            unchanged_prefix,
            identical: unchanged_prefix == self.len() && unchanged_prefix == next.len(),
            core_stable,
            unchanged,
            core_untouched,
        }
    }
}

/// The certified-unchanged structure between two task-set fingerprints
/// (see the module docs for the invalidation rules it encodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSetDelta {
    unchanged_prefix: usize,
    identical: bool,
    core_stable: Vec<bool>,
    /// Per-index "identical in content and core in both sets" mask, sized
    /// to the longer fingerprint (indices present in only one set are
    /// `false`). All `false` when the cache geometries differ.
    unchanged: Vec<bool>,
    /// Per-core "every member in either set is unchanged" mask.
    core_untouched: Vec<bool>,
}

impl TaskSetDelta {
    /// Number of leading tasks identical in content and global index in
    /// both sets. Any cached value derived only from tasks below this
    /// index is provably unchanged.
    #[must_use]
    pub fn unchanged_prefix(&self) -> usize {
        self.unchanged_prefix
    }

    /// Whether the two sets are entirely identical.
    #[must_use]
    pub fn identical(&self) -> bool {
        self.identical
    }

    /// Whether every task on `core` — in *both* the old and the new set —
    /// lies inside the unchanged prefix, so the core's member list and
    /// every member-derived table row are unchanged.
    #[must_use]
    pub fn core_stable(&self, core: usize) -> bool {
        self.core_stable.get(core).copied().unwrap_or(true)
    }

    /// Whether the task at global index `idx` is identical in content and
    /// core assignment in both sets (false for indices present in only
    /// one of the two sets, and for every index when the cache geometries
    /// differ). Unlike [`unchanged_prefix`](Self::unchanged_prefix) this
    /// looks past the first divergence.
    #[must_use]
    pub fn task_unchanged(&self, idx: usize) -> bool {
        self.unchanged.get(idx).copied().unwrap_or(false)
    }

    /// Whether every task on `core` — in *both* sets — is individually
    /// [`task_unchanged`](Self::task_unchanged): the core's member list,
    /// its member-derived CRPD/CPRO rows, and each member's same-core hp
    /// set are then provably identical, even when other cores diverged.
    /// Cores beyond both sets' ranges are vacuously untouched.
    #[must_use]
    pub fn core_untouched(&self, core: usize) -> bool {
        self.core_untouched.get(core).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheBlockSet, CoreId, Priority, Task, Time};

    fn task(name: &str, prio: u32, core: usize, md: u64) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(10))
            .memory_demand(md)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(16, 0, 4))
            .build()
            .unwrap()
    }

    fn set(tasks: Vec<Task>) -> TaskSet {
        TaskSet::new(tasks).unwrap()
    }

    #[test]
    fn identical_sets_have_full_prefix_and_stable_cores() {
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let b = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert!(delta.identical());
        assert_eq!(delta.unchanged_prefix(), 2);
        assert!(delta.core_stable(0) && delta.core_stable(1));
    }

    #[test]
    fn changed_task_truncates_prefix_and_destabilises_its_core() {
        let a = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 3),
            task("c", 3, 0, 4),
        ]);
        // τb's memory demand changes: prefix stops at 1, cores 0 and 1
        // both carry a task at index ≥ 1 so neither is stable.
        let b = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 9),
            task("c", 3, 0, 4),
        ]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert!(!delta.identical());
        assert_eq!(delta.unchanged_prefix(), 1);
        assert!(!delta.core_stable(0));
        assert!(!delta.core_stable(1));
    }

    #[test]
    fn tail_change_keeps_other_cores_stable() {
        let a = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 0, 3),
            task("c", 3, 1, 4),
        ]);
        let b = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 0, 3),
            task("c", 3, 1, 9),
        ]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 2);
        assert!(
            delta.core_stable(0),
            "core 0's tasks all sit below the change"
        );
        assert!(!delta.core_stable(1));
    }

    #[test]
    fn core_move_is_a_change() {
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let b = set(vec![task("a", 1, 1, 2), task("b", 2, 1, 3)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 0);
    }

    #[test]
    fn length_mismatch_is_never_identical() {
        let a = set(vec![task("a", 1, 0, 2)]);
        let b = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let fa = TaskSetFingerprint::of(&a);
        let fb = TaskSetFingerprint::of(&b);
        let delta = fa.delta(&fb);
        assert!(!delta.identical());
        assert_eq!(delta.unchanged_prefix(), 1);
        assert!(!delta.core_stable(1));
        // Empty previous fingerprint: nothing certifiable.
        let empty = TaskSetFingerprint::of(&set(vec![task("x", 1, 0, 1)]));
        assert_eq!(empty.delta(&fb).unchanged_prefix(), 0);
    }

    #[test]
    fn per_task_mask_sees_past_first_divergence() {
        let a = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 3),
            task("c", 3, 0, 4),
            task("d", 4, 2, 5),
        ]);
        // Only τb changes: the prefix stops at 1, but τc and τd are still
        // certified individually and cores 0/2 stay untouched.
        let b = set(vec![
            task("a", 1, 0, 2),
            task("b", 2, 1, 9),
            task("c", 3, 0, 4),
            task("d", 4, 2, 5),
        ]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 1);
        assert!(delta.task_unchanged(0));
        assert!(!delta.task_unchanged(1));
        assert!(delta.task_unchanged(2) && delta.task_unchanged(3));
        assert!(!delta.task_unchanged(4), "out of range is never certified");
        assert!(delta.core_untouched(0), "core 0 has only unchanged members");
        assert!(!delta.core_untouched(1));
        assert!(delta.core_untouched(2));
        assert!(delta.core_untouched(9), "absent cores vacuously untouched");
        assert!(!delta.core_stable(0), "prefix-based query stays coarse");
    }

    #[test]
    fn permuted_tasks_with_equal_content_hashes_are_positionally_changed() {
        // τa and τb swap priorities (and hence canonical positions) but
        // keep every other field. The *multiset* of content hashes other
        // than priority matches, yet positional certification must fail:
        // hash_content covers priority, and index identity is part of the
        // certification key.
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 0, 2)]);
        let b = set(vec![task("a", 2, 0, 2), task("b", 1, 0, 2)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 0);
        assert!(!delta.task_unchanged(0) && !delta.task_unchanged(1));
        assert!(!delta.core_untouched(0));

        // Same swap with *fully* identical content (names differ only):
        // the content hashes at each index really are different because
        // the name participates in hash_content via the task identity.
        // Permuting two genuinely identical-hash tasks is unobservable by
        // construction, which is exactly why positional compare is sound.
        let c = set(vec![task("a", 1, 0, 2), task("b", 2, 0, 3)]);
        let d = set(vec![task("b", 1, 0, 2), task("a", 2, 0, 3)]);
        let swapped = TaskSetFingerprint::of(&c).delta(&TaskSetFingerprint::of(&d));
        assert_eq!(swapped.unchanged_prefix(), 0);
    }

    #[test]
    fn core_renumbering_destabilises_both_numberings() {
        // Swap the core indices 0 <-> 1 wholesale: the partition is
        // isomorphic but every per-core table row is keyed by index, so
        // nothing may be certified.
        let a = set(vec![task("a", 1, 0, 2), task("b", 2, 1, 3)]);
        let b = set(vec![task("a", 1, 1, 2), task("b", 2, 0, 3)]);
        let delta = TaskSetFingerprint::of(&a).delta(&TaskSetFingerprint::of(&b));
        assert_eq!(delta.unchanged_prefix(), 0);
        assert!(!delta.task_unchanged(0) && !delta.task_unchanged(1));
        assert!(!delta.core_untouched(0) && !delta.core_untouched(1));
        assert!(!delta.identical());
    }

    #[test]
    fn empty_and_singleton_fingerprints() {
        let empty = TaskSetFingerprint {
            task_hashes: Vec::new(),
            cores: Vec::new(),
            cache_sets: 16,
        };
        assert!(empty.is_empty());
        let ee = empty.delta(&empty.clone());
        assert!(ee.identical());
        assert_eq!(ee.unchanged_prefix(), 0);
        assert!(!ee.task_unchanged(0));
        assert!(ee.core_untouched(0));

        let single = TaskSetFingerprint::of(&set(vec![task("s", 1, 0, 2)]));
        let es = empty.delta(&single);
        assert!(!es.identical());
        assert!(!es.task_unchanged(0), "index exists in only one set");
        assert!(!es.core_untouched(0));
        let ss = single.delta(&single.clone());
        assert!(ss.identical());
        assert!(ss.task_unchanged(0));
        assert!(ss.core_untouched(0));
    }

    #[test]
    fn cache_geometry_change_voids_the_per_task_mask() {
        let a = set(vec![task("a", 1, 0, 2)]);
        let mut wider = TaskSetFingerprint::of(&a);
        wider.cache_sets = 32;
        let delta = TaskSetFingerprint::of(&a).delta(&wider);
        assert_eq!(delta.unchanged_prefix(), 0);
        assert!(!delta.task_unchanged(0));
        assert!(!delta.core_untouched(0));
    }
}
