//! Content-hash canonicalization: the `cpa-optimize` cache key must be
//! invariant under serialization round trips and task reordering, and
//! must move when any semantic field moves.

use cpa_model::{CacheBlockSet, CoreId, Priority, Task, TaskSet, Time};

fn task(name: &str, prio: u32, core: usize, offset: usize) -> Task {
    Task::builder(name)
        .processing_demand(Time::from_cycles(40 + u64::from(prio)))
        .memory_demand(12)
        .residual_memory_demand(3)
        .period(Time::from_cycles(1_000))
        .deadline(Time::from_cycles(900))
        .core(CoreId::new(core))
        .priority(Priority::new(prio))
        .ecb(CacheBlockSet::contiguous(64, offset, 12))
        .ucb(CacheBlockSet::contiguous(64, offset, 5))
        .pcb(CacheBlockSet::contiguous(64, offset + 5, 4))
        .build()
        .unwrap()
}

fn sample() -> Vec<Task> {
    vec![
        task("fdct", 1, 0, 0),
        task("jfdctint", 2, 1, 10),
        task("crc", 3, 0, 20),
        task("matmult", 4, 1, 40),
    ]
}

#[test]
fn hash_is_invariant_under_task_reordering() {
    let forward = TaskSet::new(sample()).unwrap();
    let mut reversed_tasks = sample();
    reversed_tasks.reverse();
    let reversed = TaskSet::new(reversed_tasks).unwrap();
    let mut shuffled_tasks = sample();
    shuffled_tasks.swap(0, 2);
    shuffled_tasks.swap(1, 3);
    let shuffled = TaskSet::new(shuffled_tasks).unwrap();

    assert_eq!(forward.content_hash(), reversed.content_hash());
    assert_eq!(forward.content_hash(), shuffled.content_hash());
}

#[test]
fn hash_survives_json_round_trips() {
    let original = TaskSet::new(sample()).unwrap();
    let hash = original.content_hash();

    // One round trip, then a round trip of the round trip: any hidden
    // normalization would show up as drift on the second pass.
    let once = TaskSet::from_json(&original.to_json()).unwrap();
    let twice = TaskSet::from_json(&once.to_json()).unwrap();
    assert_eq!(once.content_hash(), hash);
    assert_eq!(twice.content_hash(), hash);
    assert_eq!(once, original);
}

#[test]
fn hash_is_invariant_under_json_array_reordering() {
    let original = TaskSet::new(sample()).unwrap();

    // Reorder the *serialized* array: decode to raw tasks via a reversed
    // rebuild, mimicking a client that emits tasks in its own order.
    let mut tasks: Vec<Task> = original.iter().cloned().collect();
    tasks.rotate_left(2);
    let rotated = TaskSet::new(tasks).unwrap();
    let reparsed = TaskSet::from_json(&rotated.to_json()).unwrap();

    assert_eq!(reparsed.content_hash(), original.content_hash());
}

#[test]
fn hash_moves_with_every_semantic_field() {
    let base = TaskSet::new(sample()).unwrap();
    let base_hash = base.content_hash();

    let variants: Vec<Vec<Task>> = vec![
        // Renamed task.
        {
            let mut v = sample();
            v[0] = task("renamed", 1, 0, 0);
            v
        },
        // Different core assignment.
        {
            let mut v = sample();
            v[1] = task("jfdctint", 2, 0, 10);
            v
        },
        // Different priority level (same relative order).
        {
            let mut v = sample();
            v[3] = task("matmult", 9, 1, 40);
            v
        },
        // Shifted cache footprint (the coloring move).
        {
            let mut v = sample();
            v[2] = task("crc", 3, 0, 21);
            v
        },
    ];
    for (i, tasks) in variants.into_iter().enumerate() {
        let variant = TaskSet::new(tasks).unwrap();
        assert_ne!(
            variant.content_hash(),
            base_hash,
            "variant {i} should change the hash"
        );
    }
}

#[test]
fn hash_composes_into_larger_keys() {
    use cpa_model::ContentHasher;

    let tasks = TaskSet::new(sample()).unwrap();
    let key = |seed: u64| {
        let mut h = ContentHasher::new();
        tasks.hash_content(&mut h);
        h.write_u64(seed);
        h.finish()
    };
    assert_eq!(key(7), key(7));
    assert_ne!(key(7), key(8), "request context must reach the key");
}
