//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of `rand` APIs the codebase uses are
//! re-implemented here (see `vendor/README.md`). The surface mirrors
//! `rand` 0.8: [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (including the PCG32-based `seed_from_u64` derivation of
//! `rand_core` 0.6, so seed discipline matches the upstream crate), and the
//! [`Standard`] / [`Distribution`] machinery backing `gen::<T>()`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Matches rand 0.8: the sign bit of the next word.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1) — rand 0.8's formula.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the bound side of `gen_range`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is < 2⁻⁶⁴·bound and irrelevant for
/// workload generation).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        start + unit * (end - start)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via the PCG32 expansion used by
    /// `rand_core` 0.6, so `seed_from_u64` produces the same generator
    /// state as the upstream crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn RngCore) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = Counter(3);
        assert!(takes_dyn(&mut rng) < 100);
    }
}
