//! Offline vendored subset of the `proptest` API.
//!
//! Provides the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros and the strategy combinators this workspace uses (integer and
//! float ranges, `any`, tuples, `collection::vec`, `collection::hash_set`,
//! `sample::select`). Differences from upstream:
//!
//! * cases are generated from a deterministic per-test RNG (seeded from the
//!   test's name), so runs are reproducible without persistence files —
//!   `proptest-regressions` files are ignored;
//! * no shrinking: a failing case reports its inputs verbatim, which is
//!   enough to reproduce since generation is deterministic;
//! * the default case count is 64 (upstream: 256) to keep the hermetic
//!   debug-mode test suite fast; tests that need more set it via
//!   `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: how test inputs are generated.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Strategy returned by [`any`]: the type's "natural" full-range
    /// distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Generates arbitrary values of `T` (uniform over the whole domain for
    /// integers, fair coin for `bool`, unit interval for floats).
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        rand::Standard: rand::Distribution<T>,
    {
        Any(PhantomData)
    }

    impl<T> Strategy for Any<T>
    where
        rand::Standard: rand::Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Strategies for collections with a size drawn from a range.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<T>` values. Created by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` values. Created by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` with up to `size` elements drawn from `element`
    /// (duplicates collapse, matching upstream's "size is an upper bound
    /// when the domain is small" behaviour).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_len(rng, &self.size);
            let mut set = HashSet::with_capacity(target);
            // Bounded retries so small domains terminate below the target.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    fn sample_len(rng: &mut TestRng, size: &Range<usize>) -> usize {
        if size.start >= size.end {
            size.start
        } else {
            rng.gen_range(size.clone())
        }
    }
}

pub mod sample {
    //! Strategies that pick from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.options.is_empty(),
                "select requires at least one option"
            );
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Execution machinery used by the [`proptest!`](crate::proptest) macro.

    use std::fmt;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError {
                msg: msg.to_string(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic per-test RNG (SplitMix64). Seeded from the test name
    /// and case index, so every run of the suite explores the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush, plenty for test input
            // generation.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs = ::std::string::String::new();
                $(
                    let $arg = {
                        let __value =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            __value
                        ));
                        __value
                    };
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __err,
                        __inputs,
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the condition (or formatted message) and its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?} == {:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?} == {:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_collections(
            pairs in prop::collection::vec((0.0f64..1.0, any::<bool>()), 0..20),
            set in prop::collection::hash_set(0usize..8, 0..16),
            pick in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            prop_assert!(pairs.len() < 20);
            for (f, _b) in &pairs {
                prop_assert!((0.0..1.0).contains(f));
            }
            prop_assert!(set.len() <= 8, "domain has 8 values: {set:?}");
            prop_assert!([2u32, 4, 8].contains(&pick));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(x in any::<u64>()) {
            // Seven cases run; nothing to assert beyond not crashing.
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        let strat = 0u64..1_000_000;
        let xs: Vec<u64> = (0..16).map(|_| strat.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| strat.generate(&mut b)).collect();
        let zs: Vec<u64> = (0..16).map(|_| strat.generate(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
