//! Offline vendored ChaCha random generators (`rand_chacha` 0.3 API).
//!
//! Implements the real ChaCha stream cipher (RFC 7539 quarter-round, 64-bit
//! block counter as in the upstream crate) so streams are high-quality and
//! fully deterministic. The keystream word order matches the upstream
//! crate's sequential block layout: word `i` of the output is word
//! `i mod 16` of block `i / 16`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

macro_rules! chacha_rng {
    ($name:ident, $doubles:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                // Words 14/15: stream id, fixed to 0 (upstream default).
                let mut working = state;
                for _ in 0..$doubles {
                    // Column round.
                    quarter(&mut working, 0, 4, 8, 12);
                    quarter(&mut working, 1, 5, 9, 13);
                    quarter(&mut working, 2, 6, 10, 14);
                    quarter(&mut working, 3, 7, 11, 15);
                    // Diagonal round.
                    quarter(&mut working, 0, 5, 10, 15);
                    quarter(&mut working, 1, 6, 11, 12);
                    quarter(&mut working, 2, 7, 8, 13);
                    quarter(&mut working, 3, 4, 9, 14);
                }
                for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
                    *out = w.wrapping_add(*s);
                }
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// The current 64-bit block counter (diagnostics only).
            #[must_use]
            pub fn get_word_pos(&self) -> u128 {
                u128::from(self.counter) * 16 + self.index as u128
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16, // force refill on first use
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_u32());
                let hi = u64::from(self.next_u32());
                (hi << 32) | lo
            }
        }
    };
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

chacha_rng!(
    ChaCha8Rng,
    4,
    "ChaCha with 8 rounds: the fast variant used for workload generation."
);
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (full-strength).");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our generator fixes the
        // stream/nonce words to zero, so instead check the zero-key
        // all-zero-state keystream against the widely published vector for
        // ChaCha20 with 64-bit counter & zero nonce.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // First keystream word of ChaCha20, zero key/counter/nonce:
        // block bytes start 76 b8 e0 ad ... → LE word 0xade0b876.
        assert_eq!(first, 0xade0_b876);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_consistent_with_words() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }
}
