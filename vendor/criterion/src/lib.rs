//! Offline vendored subset of the `criterion` API.
//!
//! Implements just enough surface for this workspace's benches to compile
//! and run: [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `throughput`,
//! `bench_function`, `finish`), [`Bencher::iter`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple wall-clock sampler reporting min/median/mean per benchmark —
//! no statistical regression analysis, no HTML reports.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (delegates to `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How a benchmark's throughput is derived from its runtime.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work-per-iteration so the report can show a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        routine(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{name}: no samples collected", self.name);
            return self;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{name}: min {min:?}, median {median:?}, mean {mean:?} over {} samples{rate}",
            self.name,
            samples.len(),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; we print as we go).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples. Each
    /// sample batches enough iterations to outlast timer granularity.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + batch-size calibration: grow the batch until one batch
        // takes at least ~200µs (or a cap is hit, for very slow routines).
        let mut batch: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        for _ in 0..self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// Declares a function bundling several benchmark functions, mirroring
/// upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2u64 + 2)
            });
        });
        group.finish();
        assert!(calls >= 3, "routine should run at least once per sample");
    }
}
