//! Offline vendored JSON serializer/deserializer.
//!
//! Bridges the vendored `serde` crate's owned [`Content`] data model to JSON
//! text. Supports the full JSON grammar; numbers parse to `U64`/`I64` when
//! integral and in range, `F64` otherwise, matching how the vendored serde
//! primitive impls expect them.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, DeserializeOwned, Serialize};

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the value's shape does not
/// match `T` (including domain validation errors raised by `try_from`
/// containers).
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    T::deserialize_content(&content).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_delimited(out, indent, depth, '[', ']', items, |o, item, d| {
                write_content(o, item, indent, d);
            })
        }
        Content::Map(entries) => {
            write_delimited(out, indent, depth, '{', '}', entries, |o, (k, v), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_content(o, v, indent, d);
            });
        }
    }
}

fn write_delimited<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: &[T],
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/inf; upstream serde_json errors here. Emitting null
        // keeps serialization infallible, and no workspace type produces
        // non-finite values.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep the ".0" marker so integral floats round-trip as floats.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn error(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(format!("expected `{}`", byte as char))),
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| self.error(e))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|e| self.error(e))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // serializer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| self.error(e))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&123u64).unwrap(), "123");
        assert_eq!(to_string(&-4i32).unwrap(), "-4");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<u64>("123").unwrap(), 123);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
