//! Offline vendored subset of the `serde` API.
//!
//! The workspace builds hermetically (no crates.io), so this crate provides
//! the slice of serde the codebase relies on: `#[derive(Serialize,
//! Deserialize)]` with the container attributes `transparent`,
//! `try_from = "…"` and `into = "…"`, externally-tagged enums, and impls for
//! the std types used in the models.
//!
//! Unlike real serde's zero-copy visitor architecture, values round-trip
//! through an owned [`Content`] tree (a JSON-shaped data model). That is a
//! deliberate simplification: the only (de)serializer in the workspace is
//! `serde_json`, whose `Value` is isomorphic to [`Content`].

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every `Serialize`/`Deserialize` impl
/// targets. Mirrors the JSON value grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// A key-ordered map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: a message, optionally prefixed with field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with an arbitrary message (the escape hatch
    /// `try_from` conversions use to surface domain validation errors).
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    fn expected(what: &'static str, got: &Content) -> Self {
        DeError::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// Prefixes the message with `context` (used for field/element paths).
    #[must_use]
    pub fn contextualize(self, context: impl fmt::Display) -> Self {
        DeError {
            msg: format!("{context}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can be converted into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn serialize_content(&self) -> Content;
}

/// A value that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a [`Content`] tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the content's shape does not match.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Marker alias matching serde's `DeserializeOwned` (our `Deserialize` is
/// already owned).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let value = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(value)
                    .map_err(|_| DeError::custom(format!(
                        "integer {value} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let value: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError::custom(format!("integer {v} out of range for i64"))
                    })?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(value)
                    .map_err(|_| DeError::custom(format!(
                        "integer {value} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let s = content
            .as_str()
            .ok_or_else(|| DeError::expected("single-char string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let items = content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", content))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::deserialize_content(item).map_err(|e| e.contextualize(format!("[{i}]")))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![self.0.serialize_content(), self.1.serialize_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content.as_seq() {
            Some([a, b]) => Ok((A::deserialize_content(a)?, B::deserialize_content(b)?)),
            _ => Err(DeError::expected("2-element sequence", content)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // Deterministic output: sort the keys.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", content))?;
        entries
            .iter()
            .map(|(k, v)| {
                V::deserialize_content(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.contextualize(k))
            })
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", content))?;
        entries
            .iter()
            .map(|(k, v)| {
                V::deserialize_content(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.contextualize(k))
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Vec::<T>::deserialize_content(content).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Vec::<T>::deserialize_content(content).map(|v| v.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Derive support (not part of the public serde API)
// ---------------------------------------------------------------------------

/// Support machinery used by the derive macros; not a stable API.
pub mod __private {
    use super::{Content, DeError, Deserialize};

    /// Looks up and deserializes a struct field from map entries.
    /// Missing fields deserialize from `Null`, which makes `Option` fields
    /// optional (as in real serde) while everything else reports the
    /// missing field by name.
    pub fn de_field<T: Deserialize>(
        entries: &[(String, Content)],
        name: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::deserialize_content(v).map_err(|e| e.contextualize(format!("field `{name}`")))
            }
            None => T::deserialize_content(&Content::Null)
                .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
        }
    }
}
