//! Offline vendored `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the vendored `serde` data model.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item
//! is parsed with a small hand-rolled walker over `proc_macro::TokenTree`s
//! and the impl is generated as a string. Supported shapes — which cover
//! every derive site in this workspace:
//!
//! * named-field structs;
//! * newtype (single-field tuple) structs, serialized transparently;
//! * enums with unit, newtype and struct variants (external tagging);
//! * container attributes `#[serde(transparent)]`,
//!   `#[serde(try_from = "T", into = "T")]`.
//!
//! Generics are intentionally unsupported (no derive site needs them); the
//! macro emits a compile error rather than silently mis-deriving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Shape {
    NamedStruct(Vec<String>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => {
            let code = match which {
                Trait::Serialize => gen_serialize(&parsed),
                Trait::Deserialize => gen_deserialize(&parsed),
            };
            code.parse()
                .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen: {e}")))
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal compile_error")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes (doc comments, other derives were stripped by the
    // compiler; `#[serde(...)]` and `#[doc]` remain).
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let group = match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("malformed attribute".into()),
        };
        parse_container_attr(&group.stream(), &mut attrs)?;
        i += 2;
    }

    // Visibility.
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored): generic type `{name}` is not supported"
        ));
    }

    let shape = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_chunks(&g.stream());
                if arity != 1 {
                    return Err(format!(
                        "serde_derive (vendored): tuple struct `{name}` has {arity} fields; \
                         only newtype (1-field) tuple structs are supported"
                    ));
                }
                Shape::NewtypeStruct
            }
            _ => return Err(format!("unsupported struct shape for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };

    Ok(Input { name, attrs, shape })
}

/// Extracts `transparent` / `try_from` / `into` from one `#[...]` attribute
/// body; non-serde attributes are ignored.
fn parse_container_attr(stream: &TokenStream, attrs: &mut ContainerAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // #[doc], #[must_use], ... — not ours
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("expected `#[serde(...)]`".into()),
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unexpected token `{other}` in #[serde(...)]")),
        };
        i += 1;
        let value = if matches!(args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            match args.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    i += 1;
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => return Err(format!("expected string after `{key} =`, got {other:?}")),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("transparent", None) => attrs.transparent = true,
            ("try_from", Some(ty)) => attrs.try_from = Some(ty),
            ("into", Some(ty)) => attrs.into = Some(ty),
            ("default" | "deny_unknown_fields" | "rename_all", _) => {
                return Err(format!(
                    "serde_derive (vendored): attribute `{key}` is not implemented"
                ));
            }
            (other, _) => {
                return Err(format!(
                    "serde_derive (vendored): unknown serde attribute `{other}`"
                ));
            }
        }
        // Optional separating comma.
        if matches!(args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(())
}

/// Collects field names from a named-field body, skipping attributes,
/// visibility and types (types are never needed — inference fills them in).
fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i)?;
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got `{other}`")),
        };
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        i = skip_type(&tokens, i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_chunks(&g.stream());
                i += 1;
                if arity != 1 {
                    return Err(format!(
                        "serde_derive (vendored): tuple variant `{name}` has {arity} fields; \
                         only newtype variants are supported"
                    ));
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip explicit discriminant `= expr`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> Result<usize, String> {
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
            _ => return Err("malformed attribute".into()),
        }
    }
    Ok(i)
}

/// Advances past a type: consumes tokens until a comma at angle-bracket
/// depth zero (or the end).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Number of top-level comma-separated non-empty chunks (tuple arity).
fn count_top_level_chunks(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut chunks = 1;
    let mut depth: i32 = 0;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                chunks += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        chunks -= 1; // trailing comma
    }
    chunks
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(into_ty) = &input.attrs.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_content(&self) -> ::serde::Content {{\n\
                     let shadow: {into_ty} = <Self as ::std::clone::Clone>::clone(self).into();\n\
                     ::serde::Serialize::serialize_content(&shadow)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::NewtypeStruct => "::serde::Serialize::serialize_content(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Content::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(__v) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              ::serde::Serialize::serialize_content(__v))])"
                        ),
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize_content({f}))"
                                    )
                                })
                                .collect();
                            let bindings = fields.join(", ");
                            format!(
                                "{name}::{vn} {{ {bindings} }} => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from({vn:?}), \
                                 ::serde::Content::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(from_ty) = &input.attrs.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_content(content: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let shadow: {from_ty} = ::serde::Deserialize::deserialize_content(content)?;\n\
                     <Self as ::std::convert::TryFrom<{from_ty}>>::try_from(shadow)\n\
                         .map_err(::serde::DeError::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::de_field(__entries, {f:?})?"))
                .collect();
            format!(
                "let __entries = content.as_map().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected map for struct \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::NewtypeStruct => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_content(content)?))"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_content(__value)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::__private::de_field(__inner, {f:?})?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __inner = __value.as_map().ok_or_else(|| \
                                     ::serde::DeError::custom(concat!(\"expected map for variant \", \
                                     {vn:?})))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __value) = &__entries[0];\n\
                         #[allow(unused_variables)]\n\
                         let __value = __value;\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected variant of {name}, got {{}}\", __other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_content(content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
